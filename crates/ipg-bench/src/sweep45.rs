//! Shared sweep for Figures 4 and 5: ID-cost and II-cost with at most 16
//! nodes per module.
//!
//! Measured points build the graph and compute I-degree exactly and
//! I-diameter via the module quotient; diameters come from exact BFS at
//! small sizes and from the (test-verified) closed forms beyond. Analytic
//! points extend each family's series to paper-scale sizes.

use crate::{capped_nucleus_partition, sample_sources};
use ipg_cluster::analytic::{self, NucleusStats, NUC_FQ4, NUC_Q4};
use ipg_cluster::imetrics;
use ipg_cluster::partition::{
    subcube_partition, substar_partition, torus_block_partition, Partition,
};
use ipg_core::algo;
use ipg_core::graph::Csr;
use ipg_networks::{classic, hier};
use serde::Serialize;

/// One point of the Fig-4/5 sweep.
#[derive(Clone, Serialize)]
pub struct CostPoint {
    /// Family label.
    pub family: String,
    /// Parameter, e.g. `"l=3"`.
    pub param: String,
    /// Node count.
    pub nodes: u64,
    /// log2 of the node count.
    pub log2_nodes: f64,
    /// Node degree.
    pub degree: u32,
    /// Diameter.
    pub diameter: u64,
    /// Inter-cluster degree.
    pub i_degree: f64,
    /// Inter-cluster diameter.
    pub i_diameter: u64,
    /// ID-cost = I-degree × diameter (Fig. 4).
    pub id_cost: f64,
    /// II-cost = I-degree × I-diameter (Fig. 5).
    pub ii_cost: f64,
    /// `"measured"` or `"analytic"`.
    pub mode: &'static str,
}

#[allow(clippy::too_many_arguments)]
fn finish(
    family: &str,
    param: String,
    nodes: u64,
    degree: u32,
    diameter: u64,
    i_degree: f64,
    i_diameter: u64,
    mode: &'static str,
) -> CostPoint {
    CostPoint {
        family: family.to_string(),
        param,
        nodes,
        log2_nodes: (nodes as f64).log2(),
        degree,
        diameter,
        i_degree,
        i_diameter,
        id_cost: i_degree * diameter as f64,
        ii_cost: i_degree * i_diameter as f64,
        mode,
    }
}

/// The module cap of Figures 4 and 5.
pub const MODULE_CAP: usize = 16;

fn measured(family: &str, param: String, g: &Csr, part: &Partition, diameter: u64) -> CostPoint {
    assert!(part.max_module_size() <= MODULE_CAP);
    let i_degree = imetrics::i_degree(g, part);
    let q = imetrics::module_graph(g, part);
    let (i_diameter, _) = if q.node_count() <= 8192 {
        imetrics::quotient_metrics(g, part)
    } else {
        let sources = sample_sources(&q, 256);
        imetrics::quotient_metrics_on(&q, &part.module_sizes(), &sources)
    };
    finish(
        family,
        param,
        g.node_count() as u64,
        g.max_degree() as u32,
        diameter,
        i_degree,
        i_diameter as u64,
        "measured",
    )
}

/// Generate the full sweep (measured points + analytic extensions).
pub fn sweep() -> Vec<CostPoint> {
    let mut pts = Vec::new();

    // hypercube, Q4 modules
    for n in [6usize, 8, 10, 12, 14] {
        let g = classic::hypercube(n);
        let p = subcube_partition(n, 4);
        pts.push(measured("hypercube", format!("n={n}"), &g, &p, n as u64));
    }
    for n in [16u32, 18, 20, 22] {
        let a = analytic::hypercube(n, 4);
        pts.push(finish(
            "hypercube",
            a.param.clone(),
            a.nodes,
            a.degree,
            a.diameter,
            a.i_degree.unwrap(),
            a.i_diameter.unwrap(),
            "analytic",
        ));
    }

    // 2-D torus, 4×4 blocks
    for k in [8u64, 16, 32, 64] {
        let g = classic::torus2d(k as usize);
        let p = torus_block_partition(k as usize, 4, 4);
        pts.push(measured("2D-torus", format!("k={k}"), &g, &p, 2 * (k / 2)));
    }
    for k in [128u64, 256, 512, 1024] {
        let a = analytic::torus2d(k, 4);
        pts.push(finish(
            "2D-torus",
            a.param.clone(),
            a.nodes,
            a.degree,
            a.diameter,
            a.i_degree.unwrap(),
            a.i_diameter.unwrap(),
            "analytic",
        ));
    }

    // star graph, sub-S3 modules (6 nodes); I-diameter has no closed form,
    // so all points are measured (feasible through S8 = 40320 nodes).
    for n in [5usize, 6, 7, 8] {
        let g = classic::star(n);
        let labels = classic::star_labels(n);
        let p = substar_partition(&labels, 3);
        let diam = (3 * (n as u64 - 1)) / 2;
        pts.push(measured("star", format!("n={n}"), &g, &p, diam));
    }

    // super-IP families over Q4 / FQ4 nuclei (16-node modules)
    type FamilyCtor = fn(usize, Csr, &str) -> ipg_core::superip::TupleNetwork;
    let families: Vec<(&str, NucleusStats, FamilyCtor)> = vec![
        ("ring-CN(l,Q4)", NUC_Q4, hier::ring_cn),
        ("ring-CN(l,FQ4)", NUC_FQ4, hier::ring_cn),
        ("CN(l,Q4)", NUC_Q4, hier::complete_cn),
        ("CN(l,FQ4)", NUC_FQ4, hier::complete_cn),
        ("superflip(l,Q4)", NUC_Q4, hier::superflip),
    ];
    for (family, nuc, ctor) in &families {
        for l in 2..=4usize {
            let nucleus = if nuc.name == "Q4" {
                classic::hypercube(4)
            } else {
                classic::folded_hypercube(4)
            };
            let tn = ctor(l, nucleus, nuc.name);
            let g = tn.build();
            let (class, count) = capped_nucleus_partition(&tn, MODULE_CAP);
            let part = Partition::new(class, count);
            let diameter = (nuc.diameter as u64 + 1) * l as u64 - 1; // Cor 4.2
                                                                     // verify at the smallest size
            if g.node_count() <= 4096 {
                assert_eq!(algo::diameter(&g) as u64, diameter, "{family} l={l}");
            }
            pts.push(measured(family, format!("l={l}"), &g, &part, diameter));
        }
        for l in 5..=6u32 {
            let a = match *family {
                "ring-CN(l,Q4)" | "ring-CN(l,FQ4)" => analytic::ring_cn(l, *nuc),
                "superflip(l,Q4)" => analytic::superflip(l, *nuc),
                _ => analytic::complete_cn(l, *nuc),
            };
            pts.push(finish(
                family,
                a.param.clone(),
                a.nodes,
                a.degree,
                a.diameter,
                a.i_degree.unwrap(),
                a.i_diameter.unwrap(),
                "analytic",
            ));
        }
    }

    pts.sort_by(|a, b| a.family.cmp(&b.family).then(a.nodes.cmp(&b.nodes)));
    pts
}
