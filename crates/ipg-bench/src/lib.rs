//! Shared helpers for the figure-regeneration binaries (`src/bin/*`) and
//! Criterion benches (`benches/*`).
//!
//! Every binary regenerates one figure or table of the paper and follows
//! the same protocol: print an aligned table to stdout and write the same
//! series as JSON under `results/` (next to the workspace root) so
//! EXPERIMENTS.md can reference machine-readable artifacts.

use ipg_core::graph::Csr;
use ipg_core::superip::TupleNetwork;
use serde::Serialize;
use std::fs;
use std::path::{Path, PathBuf};

/// Locate the workspace `results/` directory (created on demand).
pub fn results_dir() -> PathBuf {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = here
        .parent()
        .and_then(Path::parent)
        .expect("crates/ipg-bench has a workspace root");
    let dir = root.join("results");
    fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Serialize `value` as pretty JSON into `results/<name>.json`.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let path = results_dir().join(format!("{name}.json"));
    let data = serde_json::to_string_pretty(value).expect("serialize");
    fs::write(&path, data).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    eprintln!("wrote {}", path.display());
}

/// Print an aligned text table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let joined: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect();
        println!("  {}", joined.join("  "));
    };
    line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Format a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format an optional float.
pub fn f2o(x: Option<f64>) -> String {
    x.map(|v| format!("{v:.2}")).unwrap_or_else(|| "-".into())
}

/// Split a tuple network's nucleus copies into sub-modules of at most
/// `cap` nodes, assuming the nucleus node ids are hypercube-style (a
/// `2^c`-aligned chunk of ids forms a connected subcube). Returns the
/// per-node module class and the module count.
///
/// Used by the Figure-3 sweep, where large-nucleus networks (HCN(n,n) with
/// `2^n > 24`) must still respect the "at most 24 processors per module"
/// packaging constraint.
pub fn capped_nucleus_partition(tn: &TupleNetwork, cap: usize) -> (Vec<u32>, usize) {
    let m = tn.m_nodes();
    if m <= cap {
        return tn.nucleus_partition();
    }
    // chunk = largest power of two ≤ cap that divides m
    let mut chunk = 1usize;
    while chunk * 2 <= cap && m % (chunk * 2) == 0 {
        chunk *= 2;
    }
    let n = tn.node_count();
    let modules = n / chunk;
    let class: Vec<u32> = (0..n as u32).map(|v| v / chunk as u32).collect();
    (class, modules)
}

/// Evenly spaced sample of `k` sources from a graph (deterministic).
pub fn sample_sources(g: &Csr, k: usize) -> Vec<u32> {
    let n = g.node_count();
    if n <= k {
        return (0..n as u32).collect();
    }
    (0..k).map(|i| (i * n / k) as u32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipg_core::superip::SeedKind;
    use ipg_networks::classic;

    fn hsn2(nucleus: Csr, name: &str) -> TupleNetwork {
        TupleNetwork::new(
            name.to_string(),
            nucleus,
            2,
            ipg_networks::hier::hsn_supers(2)
                .iter()
                .map(|s| s.block_perm(2))
                .collect(),
            SeedKind::Repeated,
        )
    }

    #[test]
    fn capped_partition_splits_large_nuclei() {
        let tn = hsn2(classic::hypercube(6), "HSN(2,Q6)");
        let (class, modules) = capped_nucleus_partition(&tn, 24);
        // 64-node nucleus capped at 24 → chunks of 16
        assert_eq!(modules, tn.node_count() / 16);
        let mut counts = vec![0usize; modules];
        for &c in &class {
            counts[c as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c == 16));
    }

    #[test]
    fn capped_partition_keeps_small_nuclei_whole() {
        let tn = hsn2(classic::hypercube(3), "HSN(2,Q3)");
        let (_, modules) = capped_nucleus_partition(&tn, 24);
        assert_eq!(modules, 8);
    }

    #[test]
    fn sample_sources_are_in_range() {
        let g = classic::hypercube(8);
        let s = sample_sources(&g, 16);
        assert_eq!(s.len(), 16);
        assert!(s.iter().all(|&v| (v as usize) < 256));
    }
}

pub mod report;
pub mod sweep45;
