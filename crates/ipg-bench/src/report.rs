//! Shared reporting for the figure binaries: every bin writes its result
//! series as pretty JSON under `results/` *and* a JSON-lines
//! observability manifest (`results/<name>.manifest.jsonl`) recording
//! the config, git revision, span timings and the final metric dump.
//!
//! Usage pattern (see `src/bin/sim_latency.rs`):
//!
//! ```ignore
//! let rep = report::start("sim_latency", &[("seed", 7u64.into())]);
//! let _span = rep.obs().span("hypercube Q12");
//! let out = run_clustered_instrumented(&g, &class, &cfg, rep.obs(), 0);
//! rep.json("sim_latency", &rows);
//! rep.finish();
//! ```

use crate::{results_dir, write_json};
use ipg_obs::{MetaVal, Obs};
use serde::Serialize;

/// Handle pairing a result-JSON name with an open manifest.
pub struct Report {
    name: String,
    obs: Obs,
}

/// Open `results/<name>.manifest.jsonl` and stamp the `meta` record
/// (tool name, git describe, timestamp, config key/values, and the pool's
/// resolved worker count as `ipg_threads`). If the manifest cannot be
/// created the report degrades to a disabled `Obs` rather than failing
/// the experiment.
pub fn start(name: &str, config: &[(&str, MetaVal)]) -> Report {
    let path = results_dir().join(format!("{name}.manifest.jsonl"));
    let obs = match Obs::to_file(&path) {
        Ok(obs) => obs,
        Err(e) => {
            eprintln!(
                "note: manifest {} unavailable ({e}); continuing without",
                path.display()
            );
            Obs::disabled()
        }
    };
    let mut full: Vec<(&str, MetaVal)> = config.to_vec();
    full.push((
        "ipg_threads",
        MetaVal::from(rayon::current_num_threads() as u64),
    ));
    obs.emit_meta(name, &full);
    // Reset the pool accounting so the first `scaling` phase is attributed
    // from the start of this run.
    let _ = rayon::pool::take_stats();
    Report {
        name: name.to_string(),
        obs,
    }
}

impl Report {
    /// The observability handle to thread through `*_instrumented` runs.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Serialize a result series to `results/<name>.json` (the name is
    /// explicit because some bins emit several series).
    pub fn json<T: Serialize>(&self, name: &str, value: &T) {
        write_json(name, value);
    }

    /// Close an execution phase: emit a `scaling` record carrying the
    /// pool's busy/wall accounting (and hence achieved speedup) since the
    /// previous `scaling` call or report start, and return the stats for
    /// table printing. Wall-clock family — never in the metric dump.
    pub fn scaling(&self, phase: &str) -> rayon::pool::PoolStats {
        let st = rayon::pool::take_stats();
        self.obs.emit_scaling(
            phase,
            rayon::current_num_threads(),
            st.busy_secs(),
            st.wall_secs(),
        );
        st
    }

    /// Close the manifest: append the final `metrics` record (all
    /// counters, gauges and histogram summaries) and flush.
    pub fn finish(self) {
        self.obs.finish();
        eprintln!(
            "wrote {}",
            results_dir()
                .join(format!("{}.manifest.jsonl", self.name))
                .display()
        );
    }
}
