//! Figure-1 bench: time to construct the paper's showcase networks
//! (HSN(2,Q2) = HCN(2,2) w/o diameter links, HSN(3,Q2)) through each of
//! the three construction paths — label-by-label IP generation (the
//! ball-arrangement game), the tuple construction, and the direct HCN
//! constructor.

use criterion::{criterion_group, criterion_main, Criterion};
use ipg_core::superip::{NucleusSpec, SuperIpSpec, TupleNetwork};
use ipg_networks::{classic, hier};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1_generation");
    for l in [2usize, 3] {
        let spec = SuperIpSpec::hsn(l, NucleusSpec::hypercube(2));
        g.bench_function(format!("ip_generate/HSN({l},Q2)"), |b| {
            b.iter(|| {
                let ip = spec.to_ip_spec().generate().unwrap();
                black_box(ip.node_count())
            })
        });
        g.bench_function(format!("tuple_build/HSN({l},Q2)"), |b| {
            b.iter(|| {
                let tn = TupleNetwork::from_spec(&spec).unwrap();
                black_box(tn.build().arc_count())
            })
        });
        g.bench_function(format!("direct/HSN({l},Q2)"), |b| {
            b.iter(|| {
                let csr = if l == 2 {
                    hier::hcn(2, false)
                } else {
                    hier::hsn(l, classic::hypercube(2), "Q2").build()
                };
                black_box(csr.arc_count())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
