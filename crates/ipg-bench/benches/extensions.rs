//! Benches for the extension subsystems: connectivity, bisection, label
//! ranking, collectives, and algorithm emulation.

use criterion::{criterion_group, criterion_main, Criterion};
use ipg_cluster::collective::greedy_broadcast;
use ipg_cluster::partition::{nucleus_partition, subcube_partition};
use ipg_core::connectivity::{edge_connectivity, vertex_connectivity};
use ipg_core::rank::{multiset_rank, multiset_unrank};
use ipg_layout::bisection::bisection_width_kl;
use ipg_layout::grid::recursive_layout;
use ipg_networks::{classic, hier};
use ipg_sim::emulate::HostEmulator;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("extensions");
    g.sample_size(10);

    let q6 = classic::hypercube(6);
    g.bench_function("connectivity/vertex/Q6", |b| {
        b.iter(|| black_box(vertex_connectivity(&q6)))
    });
    g.bench_function("connectivity/edge/Q6", |b| {
        b.iter(|| black_box(edge_connectivity(&q6)))
    });

    let q8 = classic::hypercube(8);
    g.bench_function("bisection/kl/Q8", |b| {
        b.iter(|| black_box(bisection_width_kl(&q8, 4, 1)))
    });

    g.bench_function("rank/multiset_roundtrip", |b| {
        let counts = [2u32, 2, 2, 2];
        b.iter(|| {
            let mut acc = 0u64;
            for r in (0..2520u64).step_by(7) {
                let label = multiset_unrank(&counts, r).unwrap();
                acc += multiset_rank(&label);
            }
            black_box(acc)
        })
    });

    let tn = hier::hsn(3, classic::hypercube(4), "Q4");
    let tng = tn.build();
    let tnp = nucleus_partition(&tn);
    g.bench_function("broadcast/hierarchical/HSN(3,Q4)", |b| {
        b.iter(|| black_box(greedy_broadcast(&tng, &tnp, 0, true).rounds))
    });
    let q12 = classic::hypercube(12);
    let q12p = subcube_partition(12, 4);
    g.bench_function("broadcast/hierarchical/Q12", |b| {
        b.iter(|| black_box(greedy_broadcast(&q12, &q12p, 0, true).rounds))
    });

    g.bench_function("layout/recursive/HSN(3,Q4)", |b| {
        b.iter(|| {
            let l = recursive_layout(&tn);
            black_box(l.total_wirelength(&tng))
        })
    });

    let host = hier::hsn(2, classic::hypercube(3), "Q3").build();
    let map: Vec<u32> = (0..64).collect();
    g.bench_function("emulate/bitonic_sort/HSN(2,Q3)", |b| {
        b.iter(|| {
            let emu = HostEmulator::new(&host, &map);
            let mut keys: Vec<u64> = (0..64u64).rev().collect();
            black_box(emu.bitonic_sort(&mut keys).host_time_lower)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
