//! Ablation benches for the design choices called out in DESIGN.md §5:
//!
//! - label interning hasher: FxHash vs SipHash in the generation hot loop;
//! - all-pairs sweeps: sequential vs rayon-parallel BFS;
//! - I-distance computation: 0/1 BFS vs module-quotient BFS;
//! - IP generation vs direct tuple construction at equal output.

use criterion::{criterion_group, criterion_main, Criterion};
use ipg_cluster::imetrics;
use ipg_cluster::partition::subcube_partition;
use ipg_core::algo;
use ipg_core::label::Label;
use ipg_core::spec::IpGraphSpec;
use ipg_core::superip::{NucleusSpec, SuperIpSpec, TupleNetwork};
use ipg_networks::classic;
use std::collections::HashMap;
use std::hint::black_box;

fn bench_hashers(c: &mut Criterion) {
    // interning workload: the labels of a generated 7-star
    let ip = IpGraphSpec::star(7).generate().unwrap();
    let labels: Vec<Label> = ip.labels().to_vec();
    let mut g = c.benchmark_group("ablation_labels");
    g.bench_function("intern/fxhash", |b| {
        b.iter(|| {
            let mut map: ipg_core::util::FxHashMap<Label, u32> = Default::default();
            for (i, l) in labels.iter().enumerate() {
                map.insert(l.clone(), i as u32);
            }
            let mut hits = 0u32;
            for l in &labels {
                hits += map[l];
            }
            black_box(hits)
        })
    });
    g.bench_function("intern/siphash", |b| {
        b.iter(|| {
            let mut map: HashMap<Label, u32> = HashMap::new();
            for (i, l) in labels.iter().enumerate() {
                map.insert(l.clone(), i as u32);
            }
            let mut hits = 0u32;
            for l in &labels {
                hits += map[l];
            }
            black_box(hits)
        })
    });
    g.finish();
}

fn bench_bfs_parallelism(c: &mut Criterion) {
    let g = classic::hypercube(11); // 2048 nodes
    let mut grp = c.benchmark_group("ablation_bfs");
    grp.sample_size(10);
    grp.bench_function("all_pairs/parallel", |b| {
        b.iter(|| black_box(algo::diameter(&g)))
    });
    grp.bench_function("all_pairs/sequential", |b| {
        b.iter(|| {
            let mut worst = 0;
            for s in 0..g.node_count() as u32 {
                worst = worst.max(algo::eccentricity(&g, s));
            }
            black_box(worst)
        })
    });
    grp.finish();
}

fn bench_idistance_paths(c: &mut Criterion) {
    let g = classic::hypercube(12);
    let p = subcube_partition(12, 4);
    let mut grp = c.benchmark_group("ablation_imetrics");
    grp.sample_size(10);
    grp.bench_function("i_distance/zero_one_bfs", |b| {
        b.iter(|| black_box(imetrics::exact_distance_metrics(&g, &p)))
    });
    grp.bench_function("i_distance/quotient", |b| {
        b.iter(|| black_box(imetrics::quotient_metrics(&g, &p)))
    });
    grp.finish();
}

fn bench_generation_paths(c: &mut Criterion) {
    let spec = SuperIpSpec::hsn(2, NucleusSpec::hypercube(4)); // 256 nodes
    let mut grp = c.benchmark_group("ablation_generation");
    grp.bench_function("generate/ip_closure", |b| {
        b.iter(|| black_box(spec.to_ip_spec().generate().unwrap().node_count()))
    });
    grp.bench_function("generate/tuple", |b| {
        b.iter(|| {
            let tn = TupleNetwork::from_spec(&spec).unwrap();
            black_box(tn.build().arc_count())
        })
    });
    grp.finish();
}

criterion_group!(
    benches,
    bench_hashers,
    bench_bfs_parallelism,
    bench_idistance_paths,
    bench_generation_paths
);
criterion_main!(benches);
