//! Figure-2 bench: cost of regenerating the DD-cost series — the analytic
//! sweep itself (cheap) and the exact BFS verification backing it
//! (diameter of a mid-size instance per family).

use criterion::{criterion_group, criterion_main, Criterion};
use ipg_cluster::analytic::{self, NUC_FQ4, NUC_Q4};
use ipg_core::algo;
use ipg_networks::classic;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2_dd");

    g.bench_function("analytic_sweep/all_families", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for n in 6..=22u32 {
                acc += analytic::hypercube(n, 4).dd_cost();
                acc += analytic::folded_hypercube(n, 4).dd_cost();
            }
            for l in 2..=6u32 {
                acc += analytic::hsn(l, NUC_Q4).dd_cost();
                acc += analytic::ring_cn(l, NUC_FQ4).dd_cost();
                acc += analytic::complete_cn(l, NUC_Q4).dd_cost();
            }
            black_box(acc)
        })
    });

    let q10 = classic::hypercube(10);
    g.bench_function("exact_diameter/Q10", |b| {
        b.iter(|| black_box(algo::diameter(&q10)))
    });
    let star7 = classic::star(7);
    g.bench_function("exact_diameter/star7", |b| {
        b.iter(|| black_box(algo::diameter(&star7)))
    });
    let cn = ipg_networks::hier::ring_cn(3, classic::hypercube(4), "Q4").build();
    g.bench_function("exact_diameter/ring-CN(3,Q4)", |b| {
        b.iter(|| black_box(algo::diameter(&cn)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
