//! Figure-4/5 bench: one measured sweep point end-to-end (build network,
//! partition, I-degree + quotient I-diameter) per family, at the 4096-node
//! scale the sweep uses.

use criterion::{criterion_group, criterion_main, Criterion};
use ipg_bench::capped_nucleus_partition;
use ipg_cluster::imetrics;
use ipg_cluster::partition::{subcube_partition, torus_block_partition, Partition};
use ipg_networks::{classic, hier};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig45_point");
    g.sample_size(20);

    g.bench_function("hypercube/n=12", |b| {
        b.iter(|| {
            let g = classic::hypercube(12);
            let p = subcube_partition(12, 4);
            let i = imetrics::i_degree(&g, &p);
            let (d, _) = imetrics::quotient_metrics(&g, &p);
            black_box((i, d))
        })
    });
    g.bench_function("torus/k=64", |b| {
        b.iter(|| {
            let g = classic::torus2d(64);
            let p = torus_block_partition(64, 4, 4);
            let i = imetrics::i_degree(&g, &p);
            let (d, _) = imetrics::quotient_metrics(&g, &p);
            black_box((i, d))
        })
    });
    g.bench_function("ring-CN/l=3,Q4", |b| {
        b.iter(|| {
            let tn = hier::ring_cn(3, classic::hypercube(4), "Q4");
            let g = tn.build();
            let (class, count) = capped_nucleus_partition(&tn, 16);
            let p = Partition::new(class, count);
            let i = imetrics::i_degree(&g, &p);
            let (d, _) = imetrics::quotient_metrics(&g, &p);
            black_box((i, d))
        })
    });
    g.bench_function("star/n=7", |b| {
        b.iter(|| {
            let g = classic::star(7);
            let labels = classic::star_labels(7);
            let p = ipg_cluster::partition::substar_partition(&labels, 3);
            let i = imetrics::i_degree(&g, &p);
            let (d, _) = imetrics::quotient_metrics(&g, &p);
            black_box((i, d))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
