//! Addressing bench: hash-interned vs. rank-indexed (arithmetic codec)
//! construction and routing on HSN/CN instances at several sizes.
//!
//! Three comparisons per instance:
//!
//! - `interned_build` — label-by-label BFS generation with `FxHashMap`
//!   interning, then CSR conversion (the general-IP fallback path);
//! - `rank_build` — [`ipg_core::codec::NodeCodec`] construction plus the
//!   arithmetic CSR emission (no label vector, no hash map);
//! - `interned_route` / `rank_route` — Theorem-4.1 routing over labels
//!   (`SuperRouter`, hash lookups per block) vs. over codec ids
//!   (`TupleRouter`, pure mixed-radix arithmetic).
//!
//! `scripts/bench.sh` runs this suite with `CRITERION_JSON` set and
//! distills the medians into `results/BENCH_core.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use ipg_core::routing::SuperRouter;
use ipg_core::superip::{NucleusSpec, SuperIpSpec, TupleNetwork};
use ipg_core::tuple_routing::TupleRouter;
use std::hint::black_box;

/// Fixed instance list, smallest to largest. The largest HSN and CN
/// entries are the acceptance-criteria cases for the ≥ 2× build speedup.
fn instances() -> Vec<SuperIpSpec> {
    vec![
        SuperIpSpec::hsn(2, NucleusSpec::hypercube(2)),
        SuperIpSpec::hsn(2, NucleusSpec::hypercube(3)),
        SuperIpSpec::hsn(2, NucleusSpec::hypercube(4)),
        SuperIpSpec::hsn(3, NucleusSpec::hypercube(3)),
        SuperIpSpec::complete_cn(4, NucleusSpec::hypercube(2)),
        SuperIpSpec::complete_cn(5, NucleusSpec::hypercube(2)),
    ]
}

fn bench_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("addressing");
    g.sample_size(20);
    for spec in instances() {
        g.bench_function(format!("interned_build/{}", spec.name), |b| {
            b.iter(|| {
                let ip = spec.to_ip_spec().generate().unwrap();
                black_box(ip.to_directed_csr().arc_count())
            })
        });
        g.bench_function(format!("rank_build/{}", spec.name), |b| {
            b.iter(|| {
                // end-to-end: codec construction (nucleus enumeration +
                // tables) is part of the build, not amortized away
                let codec = spec.codec().unwrap();
                black_box(codec.build_directed_csr().arc_count())
            })
        });
    }
    g.finish();
}

fn bench_route(c: &mut Criterion) {
    let mut g = c.benchmark_group("addressing");
    g.sample_size(20);
    for spec in instances() {
        let ip = spec.to_ip_spec().generate().unwrap();
        let sr = SuperRouter::new(&spec).unwrap();
        let tn = TupleNetwork::from_spec(&spec).unwrap();
        let tr = TupleRouter::new(&tn).unwrap();
        let codec = spec.codec().unwrap();
        let n = ip.node_count() as u32;
        // deterministic sample of (src, dst) pairs, identical nodes for
        // both routers (mapped through the codec for the id-based one)
        let pairs: Vec<(u32, u32)> = (0..32u32)
            .map(|i| ((i * 97) % n, (i * 193 + n / 2) % n))
            .collect();
        g.bench_function(format!("interned_route/{}", spec.name), |b| {
            b.iter(|| {
                let mut total = 0usize;
                for &(u, v) in &pairs {
                    total += sr.route(ip.label(u), ip.label(v)).unwrap().len();
                }
                black_box(total)
            })
        });
        let id_pairs: Vec<(u32, u32)> = pairs
            .iter()
            .map(|&(u, v)| {
                (
                    codec.encode(ip.label(u).symbols()).unwrap(),
                    codec.encode(ip.label(v).symbols()).unwrap(),
                )
            })
            .collect();
        g.bench_function(format!("rank_route/{}", spec.name), |b| {
            b.iter(|| {
                let mut total = 0usize;
                for &(u, v) in &id_pairs {
                    total += tr.route(u, v).unwrap().len();
                }
                black_box(total)
            })
        });
    }
    g.finish();
}

fn bench_codec_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("addressing");
    g.sample_size(20);
    // microbench on the packed-boundary instance: 256 nodes, k = 16
    let spec = SuperIpSpec::hsn(2, NucleusSpec::hypercube(4));
    let codec = spec.codec().unwrap();
    let n = codec.node_count() as u32;
    g.bench_function("codec_encode_decode/HSN(2,Q4)", |b| {
        let mut buf = vec![0u8; codec.label_len()];
        b.iter(|| {
            let mut acc = 0u64;
            for id in 0..n {
                codec.decode_into(id, &mut buf);
                acc += codec.encode(&buf).unwrap() as u64;
            }
            black_box(acc)
        })
    });
    g.bench_function("codec_arcs/HSN(2,Q4)", |b| {
        let mut out = Vec::with_capacity(codec.generator_count());
        b.iter(|| {
            let mut acc = 0u64;
            for id in 0..n {
                out.clear();
                codec.arcs_into(id, &mut out);
                acc += out.iter().map(|&w| w as u64).sum::<u64>();
            }
            black_box(acc)
        })
    });
    g.bench_function("packed_neighbors/HSN(2,Q4)", |b| {
        let gens = codec.generator_count();
        b.iter(|| {
            let mut acc = 0u64;
            for id in 0..n {
                let p = codec.decode_packed(id);
                for gi in 0..gens {
                    acc += codec.encode_packed(codec.apply_packed(p, gi)).unwrap() as u64;
                }
            }
            black_box(acc)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_build, bench_route, bench_codec_ops);
criterion_main!(benches);
