//! Theorem-4.1 bench: hierarchical routing cost — router construction
//! (nucleus distance table + schedule search) and per-route latency,
//! compared against a full BFS per query.

use criterion::{criterion_group, criterion_main, Criterion};
use ipg_core::algo;
use ipg_core::routing::SuperRouter;
use ipg_core::superip::{NucleusSpec, SuperIpSpec};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("thm41_routing");

    let spec = SuperIpSpec::hsn(3, NucleusSpec::hypercube(2));
    let ip = spec.to_ip_spec().generate().unwrap();
    let csr = ip.to_undirected_csr();

    g.bench_function("router_build/HSN(3,Q2)", |b| {
        b.iter(|| black_box(SuperRouter::new(&spec).unwrap()))
    });

    let router = SuperRouter::new(&spec).unwrap();
    let n = ip.node_count() as u32;
    g.bench_function("route/HSN(3,Q2)", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(17) % n;
            let j = (i.wrapping_mul(31) + 7) % n;
            black_box(router.route(ip.label(i), ip.label(j)).unwrap().len())
        })
    });
    g.bench_function("bfs_route/HSN(3,Q2)", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(17) % n;
            let j = (i.wrapping_mul(31) + 7) % n;
            black_box(algo::shortest_path(&csr, i, j).unwrap().len())
        })
    });

    // schedule search alone, across families (the t / t_S computation)
    g.bench_function("schedule/t(HSN l=6)", |b| {
        let s = SuperIpSpec::hsn(6, NucleusSpec::hypercube(1));
        b.iter(|| black_box(ipg_core::routing::t_value(&s).unwrap()))
    });
    g.bench_function("schedule/t_S(sym ring-CN l=5)", |b| {
        let s = SuperIpSpec::ring_cn(5, NucleusSpec::hypercube(1)).symmetric();
        b.iter(|| black_box(ipg_core::routing::t_s_value(&s).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
