//! Figure-3 bench: computing the inter-cluster metrics (I-degree,
//! I-diameter, average I-distance) for representative networks, via both
//! the exact 0/1-BFS path and the module-quotient shortcut.

use criterion::{criterion_group, criterion_main, Criterion};
use ipg_cluster::imetrics;
use ipg_cluster::partition::{nucleus_partition, subcube_partition};
use ipg_networks::{classic, hier};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_imetrics");

    let q12 = classic::hypercube(12);
    let pq = subcube_partition(12, 4);
    g.bench_function("exact_01bfs/Q12", |b| {
        b.iter(|| black_box(imetrics::exact_distance_metrics(&q12, &pq)))
    });
    g.bench_function("quotient/Q12", |b| {
        b.iter(|| black_box(imetrics::quotient_metrics(&q12, &pq)))
    });
    g.bench_function("i_degree/Q12", |b| {
        b.iter(|| black_box(imetrics::i_degree(&q12, &pq)))
    });

    let tn = hier::complete_cn(3, classic::hypercube(4), "Q4");
    let cn = tn.build();
    let pcn = nucleus_partition(&tn);
    g.bench_function("exact_01bfs/CN(3,Q4)", |b| {
        b.iter(|| black_box(imetrics::exact_distance_metrics(&cn, &pcn)))
    });
    g.bench_function("quotient/CN(3,Q4)", |b| {
        b.iter(|| black_box(imetrics::quotient_metrics(&cn, &pcn)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
