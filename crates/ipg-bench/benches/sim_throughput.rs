//! Simulator bench: cycles per second of the packet engine at light and
//! heavy load on a 1024-node hypercube (the cost of regenerating the
//! §5 simulation experiment).

use criterion::{criterion_group, criterion_main, Criterion};
use ipg_networks::classic;
use ipg_sim::engine::{run_uniform, SimConfig};
use std::hint::black_box;

fn cfg(rate: f64) -> SimConfig {
    SimConfig {
        injection_rate: rate,
        warmup_cycles: 100,
        measure_cycles: 400,
        drain_cycles: 500,
        on_module_interval: 1,
        off_module_interval: 1,
        seed: 1,
        ..SimConfig::default()
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_throughput");
    g.sample_size(10);
    let q10 = classic::hypercube(10);
    g.bench_function("1000_cycles/Q10/light", |b| {
        b.iter(|| black_box(run_uniform(&q10, &cfg(0.01)).delivered))
    });
    g.bench_function("1000_cycles/Q10/heavy", |b| {
        b.iter(|| black_box(run_uniform(&q10, &cfg(0.3)).delivered))
    });
    let tn = ipg_networks::hier::ring_cn(2, classic::hypercube(5), "Q5");
    let cn = tn.build();
    g.bench_function("1000_cycles/ring-CN(2,Q5)/light", |b| {
        b.iter(|| black_box(run_uniform(&cn, &cfg(0.01)).delivered))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
