//! Intra-workspace call-graph construction over [`crate::parser`] output.
//!
//! Each library function of the analyzed crates becomes a node; edges are
//! *resolved call sites*. Resolution is deliberately approximate — no
//! type inference, no trait solving — but errs on the side of
//! over-approximation where that is cheap, because the consumer
//! ([`crate::reach`]) uses the graph to prove the *absence* of sink
//! reachability:
//!
//! - **Qualified paths** (`crate::rng::node_stream`, `ipg_core::fault::
//!   bfs_faulted`, `Csr::from_fn`, `Self::helper`) resolve through the
//!   file's `use`-alias table, `crate`/`self`/`super`/`Self` anchors, and
//!   workspace crate names.
//! - **Bare calls** (`helper(x)`) resolve to the same module, then to the
//!   use-alias table, then to any free function of the same crate (this
//!   covers glob imports).
//! - **Method calls** (`x.launch(…)`) resolve *by name* to every
//!   workspace method with that name — except names on the std-prelude
//!   skip list ([`METHOD_SKIP`]), which would connect every `.push(…)` to
//!   every workspace `push` and drown the graph in false edges. A
//!   `self.foo(…)` call bypasses the skip list and resolves within the
//!   caller's own impl type first, so intra-type plumbing (the engines'
//!   `fifo_push`, `demand_add`, …) always stays connected.
//!
//! The approximation trade-offs are documented in DESIGN.md §14.

use crate::lexer::{Tok, TokKind};
use crate::parser::{FnDef, ParsedFile};
use crate::rules::FileKind;
use std::collections::{BTreeMap, BTreeSet};

/// Everything the graph passes need to know about one source file.
/// Produced by the driver's (parallel) per-file scan; order is the
/// driver's sorted file order, so downstream passes are deterministic.
pub struct FileUnit {
    pub crate_name: String,
    /// Workspace-relative path with `/` separators.
    pub rel_path: String,
    pub kind: FileKind,
    /// File-level module path derived from the location under `src/`
    /// (`src/engine.rs` → `["engine"]`, `src/lib.rs` → `[]`).
    pub module: Vec<String>,
    pub tokens: Vec<Tok>,
    pub parsed: ParsedFile,
    pub test_ranges: Vec<(u32, u32)>,
    pub lines: Vec<String>,
}

impl FileUnit {
    pub fn file_name(&self) -> &str {
        self.rel_path.rsplit('/').next().unwrap_or(&self.rel_path)
    }

    pub fn in_test(&self, line: u32) -> bool {
        self.test_ranges
            .iter()
            .any(|&(a, b)| a <= line && line <= b)
    }

    pub fn snippet(&self, line: u32) -> String {
        self.lines
            .get(line as usize - 1)
            .map(|s| s.trim().to_string())
            .unwrap_or_default()
    }
}

/// One extracted call site.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Call {
    pub line: u32,
    pub kind: CallKind,
}

#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CallKind {
    /// `a::b::f(…)` or bare `f(…)` — full path segments incl. the name.
    Path(Vec<String>),
    /// `.f(…)`; `on_self` when the receiver is literally `self`.
    Method { name: String, on_self: bool },
    /// `name!(…)` / `name![…]` / `name!{…}`.
    Macro(String),
}

/// Keywords that read like calls (`if (…)`, `match (…)`) or that never
/// name a function.
const CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "break", "continue", "in", "as", "move",
    "mut", "ref", "unsafe", "where", "else", "let", "fn", "impl", "use", "pub", "dyn", "box",
    "await", "yield", "true", "false", "const", "static", "struct", "enum", "trait", "mod",
    "extern", "type",
];

/// Ubiquitous std-prelude method names: resolving these by bare name
/// would wire every `.push(…)` to every workspace `push` method. Calls
/// through `self` bypass this list (they resolve within the caller's own
/// impl type), so intra-type helpers stay connected regardless of name.
pub const METHOD_SKIP: &[&str] = &[
    "all",
    "and_then",
    "any",
    "as_bytes",
    "as_mut",
    "as_ref",
    "as_slice",
    "as_str",
    "abs",
    "binary_search",
    "bytes",
    "chain",
    "chars",
    "checked_add",
    "checked_mul",
    "checked_sub",
    "chunks",
    "clear",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "copied",
    "count",
    "dedup",
    "drain",
    "ends_with",
    "entry",
    "enumerate",
    "eq",
    "err",
    "extend",
    "fill",
    "filter",
    "filter_map",
    "find",
    "first",
    "flat_map",
    "flatten",
    "fmt",
    "fold",
    "get",
    "get_mut",
    "hash",
    "insert",
    "into_iter",
    "is_empty",
    "is_err",
    "is_none",
    "is_ok",
    "is_some",
    "iter",
    "iter_mut",
    "join",
    "last",
    "len",
    "map",
    "max",
    "max_by",
    "max_by_key",
    "min",
    "min_by",
    "min_by_key",
    "ne",
    "next",
    "ok",
    "or_default",
    "or_insert",
    "or_insert_with",
    "partition_point",
    "pop",
    "position",
    "push",
    "push_str",
    "remove",
    "reserve",
    "resize",
    "retain",
    "rev",
    "saturating_add",
    "saturating_mul",
    "saturating_sub",
    "skip",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "split",
    "starts_with",
    "sum",
    "swap",
    "take",
    "to_owned",
    "to_string",
    "to_vec",
    "trim",
    "truncate",
    "unwrap",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "windows",
    "wrapping_add",
    "write",
    "zip",
];

/// Extract call sites from a body token range.
pub fn extract_calls(toks: &[Tok], body: (usize, usize)) -> Vec<Call> {
    let (lo, hi) = body;
    let mut out = Vec::new();
    let mut i = lo;
    while i < hi.min(toks.len()) {
        let TokKind::Ident(name) = &toks[i].kind else {
            i += 1;
            continue;
        };
        // `fn helper(` — a nested fn definition, not a call
        if i > lo {
            if let TokKind::Ident(prev) = &toks[i - 1].kind {
                if prev == "fn" {
                    i += 1;
                    continue;
                }
            }
        }
        if CALL_KEYWORDS.contains(&name.as_str()) {
            i += 1;
            continue;
        }
        // optional turbofish `::<…>` between the name and the arguments
        let mut j = i + 1;
        if j + 2 < hi
            && toks[j].kind == TokKind::Punct(':')
            && toks[j + 1].kind == TokKind::Punct(':')
            && toks[j + 2].kind == TokKind::Punct('<')
        {
            let mut depth = 0i32;
            let mut k = j + 2;
            while k < hi {
                match toks[k].kind {
                    TokKind::Punct('<') => depth += 1,
                    TokKind::Punct('>') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            j = (k + 1).min(hi);
        }
        let next = toks.get(j).filter(|_| j < hi).map(|t| &t.kind);
        // macro call: `name!(…)` / `name![…]` / `name!{…}`
        if next == Some(&TokKind::Punct('!')) {
            let delim = toks.get(j + 1).filter(|_| j + 1 < hi).map(|t| &t.kind);
            if matches!(
                delim,
                Some(TokKind::Punct('(')) | Some(TokKind::Punct('[')) | Some(TokKind::Punct('{'))
            ) {
                out.push(Call {
                    line: toks[i].line,
                    kind: CallKind::Macro(name.clone()),
                });
            }
            i = j + 1;
            continue;
        }
        if next != Some(&TokKind::Punct('(')) {
            i += 1;
            continue;
        }
        // method call?
        if i > lo && toks[i - 1].kind == TokKind::Punct('.') {
            let on_self = i >= 2
                && toks[i - 2].kind == TokKind::Ident("self".to_string())
                && (i < 3 || toks[i - 3].kind != TokKind::Punct('.'));
            out.push(Call {
                line: toks[i].line,
                kind: CallKind::Method {
                    name: name.clone(),
                    on_self,
                },
            });
            i = j;
            continue;
        }
        // path call: walk back over `seg ::` pairs
        let mut segs = vec![name.clone()];
        let mut k = i;
        while k >= lo + 3
            && toks[k - 1].kind == TokKind::Punct(':')
            && toks[k - 2].kind == TokKind::Punct(':')
        {
            if let TokKind::Ident(seg) = &toks[k - 3].kind {
                segs.insert(0, seg.clone());
                k -= 3;
            } else {
                break;
            }
        }
        out.push(Call {
            line: toks[i].line,
            kind: CallKind::Path(segs),
        });
        i = j;
    }
    out
}

/// One call-graph node: a library function of an analyzed crate.
pub struct Node {
    /// Index into the `FileUnit` slice the graph was built from.
    pub file: usize,
    pub def: FnDef,
    /// Short display key for chains: `Type::name` or `name`.
    pub key: String,
    pub calls: Vec<Call>,
}

/// The workspace call graph. Node ids are positions in `nodes`, assigned
/// in (sorted file, definition) order — deterministic by construction.
pub struct Graph {
    pub nodes: Vec<Node>,
    /// `edges[u]` = sorted, deduped `(target node, call line)` pairs.
    pub edges: Vec<Vec<(usize, u32)>>,
}

/// Build the call graph over `files`, keeping only library code of the
/// crates in `crates` (tests, benches, bins, and `#[cfg(test)]` items are
/// excluded — they can neither be reached from engine entry points nor
/// should they pollute method-name resolution).
pub fn build(files: &[FileUnit], crates: &BTreeSet<String>) -> Graph {
    let mut nodes = Vec::new();
    for (fi, u) in files.iter().enumerate() {
        if !crates.contains(&u.crate_name)
            || u.kind != FileKind::Lib
            || u.rel_path.starts_with("vendor/")
        {
            continue;
        }
        for def in &u.parsed.fns {
            if u.in_test(def.line) {
                continue;
            }
            let key = match &def.self_ty {
                Some(t) => format!("{t}::{}", def.name),
                None => def.name.clone(),
            };
            let calls = extract_calls(&u.tokens, def.body);
            nodes.push(Node {
                file: fi,
                def: def.clone(),
                key,
                calls,
            });
        }
    }

    // name indexes
    let mut methods: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut ty_methods: BTreeMap<(&str, &str, &str), Vec<usize>> = BTreeMap::new();
    let mut free_by_module: BTreeMap<(&str, String, &str), Vec<usize>> = BTreeMap::new();
    let mut free_by_crate: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    let mut any_by_crate: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    for (id, n) in nodes.iter().enumerate() {
        let u = &files[n.file];
        let crate_name = u.crate_name.as_str();
        let name = n.def.name.as_str();
        any_by_crate.entry((crate_name, name)).or_default().push(id);
        match &n.def.self_ty {
            Some(ty) => {
                methods.entry(name).or_default().push(id);
                ty_methods
                    .entry((crate_name, ty.as_str(), name))
                    .or_default()
                    .push(id);
            }
            None => {
                let mut module = u.module.clone();
                module.extend(n.def.module.iter().cloned());
                free_by_module
                    .entry((crate_name, module.join("::"), name))
                    .or_default()
                    .push(id);
                free_by_crate
                    .entry((crate_name, name))
                    .or_default()
                    .push(id);
            }
        }
    }
    let crate_names: BTreeSet<&str> = crates.iter().map(|s| s.as_str()).collect();

    let mut edges: Vec<Vec<(usize, u32)>> = vec![Vec::new(); nodes.len()];
    for (id, n) in nodes.iter().enumerate() {
        let u = &files[n.file];
        for call in &n.calls {
            let targets = match &call.kind {
                CallKind::Method { name, on_self } => {
                    resolve_method(name, *on_self, n, u, &methods, &ty_methods)
                }
                CallKind::Path(segs) => resolve_path(
                    segs,
                    n,
                    u,
                    &crate_names,
                    &ty_methods,
                    &free_by_module,
                    &free_by_crate,
                    &any_by_crate,
                ),
                CallKind::Macro(_) => Vec::new(),
            };
            for t in targets {
                if t != id {
                    edges[id].push((t, call.line));
                }
            }
        }
        edges[id].sort_unstable();
        edges[id].dedup_by_key(|(t, _)| *t);
    }

    Graph { nodes, edges }
}

fn resolve_method(
    name: &str,
    on_self: bool,
    caller: &Node,
    caller_file: &FileUnit,
    methods: &BTreeMap<&str, Vec<usize>>,
    ty_methods: &BTreeMap<(&str, &str, &str), Vec<usize>>,
) -> Vec<usize> {
    if on_self {
        if let Some(ty) = &caller.def.self_ty {
            if let Some(v) = ty_methods.get(&(caller_file.crate_name.as_str(), ty.as_str(), name)) {
                return v.clone();
            }
        }
        // `self.f(…)` with no same-type impl: a trait default method or a
        // blanket impl — fall back to the global name match
        return methods.get(name).cloned().unwrap_or_default();
    }
    if METHOD_SKIP.contains(&name) {
        return Vec::new();
    }
    methods.get(name).cloned().unwrap_or_default()
}

#[allow(clippy::too_many_arguments)]
fn resolve_path(
    segs: &[String],
    caller: &Node,
    caller_file: &FileUnit,
    crate_names: &BTreeSet<&str>,
    ty_methods: &BTreeMap<(&str, &str, &str), Vec<usize>>,
    free_by_module: &BTreeMap<(&str, String, &str), Vec<usize>>,
    free_by_crate: &BTreeMap<(&str, &str), Vec<usize>>,
    any_by_crate: &BTreeMap<(&str, &str), Vec<usize>>,
) -> Vec<usize> {
    let caller_crate = caller_file.crate_name.as_str();
    if segs.len() == 1 {
        let name = segs[0].as_str();
        // tuple-struct constructors etc. start uppercase — not calls we
        // can resolve, and treating `Some(…)` as a call would be noise
        if name.starts_with(|c: char| c.is_ascii_uppercase()) {
            return Vec::new();
        }
        // same module
        let mut module = caller_file.module.clone();
        module.extend(caller.def.module.iter().cloned());
        if let Some(v) = free_by_module.get(&(caller_crate, module.join("::"), name)) {
            return v.clone();
        }
        // use alias
        if let Some(u) = caller_file.parsed.uses.iter().find(|u| u.alias == name) {
            let mut full = u.path.clone();
            // replace the final segment with the original name (the alias
            // may rename it, but `path` already ends at the true name)
            let _ = &mut full;
            return resolve_path(
                &full,
                caller,
                caller_file,
                crate_names,
                ty_methods,
                free_by_module,
                free_by_crate,
                any_by_crate,
            );
        }
        // same crate, any module (glob / `super::*` imports)
        return free_by_crate
            .get(&(caller_crate, name))
            .cloned()
            .unwrap_or_default();
    }

    // expand a leading use alias: `graph::helper(…)` with
    // `use ipg_core::graph;` in scope
    if let Some(u) = caller_file
        .parsed
        .uses
        .iter()
        .find(|u| u.alias == segs[0] && u.path.len() > 1)
    {
        let mut full = u.path.clone();
        full.extend(segs[1..].iter().cloned());
        if full != segs {
            return resolve_path(
                &full,
                caller,
                caller_file,
                crate_names,
                ty_methods,
                free_by_module,
                free_by_crate,
                any_by_crate,
            );
        }
    }

    // anchor the path to a crate + module prefix
    let mut idx = 0usize;
    let mut target_crate = None;
    let mut module_prefix: Vec<String> = Vec::new();
    match segs[0].as_str() {
        "crate" => {
            target_crate = Some(caller_crate.to_string());
            idx = 1;
        }
        "self" => {
            target_crate = Some(caller_crate.to_string());
            module_prefix = caller_file.module.clone();
            module_prefix.extend(caller.def.module.iter().cloned());
            idx = 1;
        }
        "super" => {
            target_crate = Some(caller_crate.to_string());
            module_prefix = caller_file.module.clone();
            module_prefix.extend(caller.def.module.iter().cloned());
            while idx < segs.len() && segs[idx] == "super" {
                module_prefix.pop();
                idx += 1;
            }
        }
        "Self" => {
            // `Self::helper(…)` — associated fn of the caller's own type
            if let (Some(ty), [.., name]) = (&caller.def.self_ty, segs) {
                return ty_methods
                    .get(&(caller_crate, ty.as_str(), name.as_str()))
                    .cloned()
                    .unwrap_or_default();
            }
            return Vec::new();
        }
        s => {
            let dashed = s.replace('_', "-");
            if crate_names.contains(dashed.as_str()) {
                target_crate = Some(dashed);
                idx = 1;
            } else if crate_names.contains(s) {
                target_crate = Some(s.to_string());
                idx = 1;
            }
        }
    }
    let Some(target_crate) = target_crate else {
        // `Type::f(…)` with no crate anchor: the type may be local or
        // imported — try the caller's crate, then every analyzed crate
        if segs.len() == 2 && segs[0].starts_with(|c: char| c.is_ascii_uppercase()) {
            let (ty, name) = (segs[0].as_str(), segs[1].as_str());
            if let Some(v) = ty_methods.get(&(caller_crate, ty, name)) {
                return v.clone();
            }
            let mut out = Vec::new();
            for c in crate_names {
                if let Some(v) = ty_methods.get(&(*c, ty, name)) {
                    out.extend(v.iter().copied());
                }
            }
            out.sort_unstable();
            out.dedup();
            return out;
        }
        // std / vendor / unknown — outside the workspace graph
        return Vec::new();
    };

    let rest = &segs[idx..];
    let Some((name, pre)) = rest.split_last() else {
        return Vec::new();
    };
    let name = name.as_str();
    if let Some(last) = pre.last() {
        if last.starts_with(|c: char| c.is_ascii_uppercase()) {
            // `…::Type::assoc(…)`
            if let Some(v) = ty_methods.get(&(target_crate.as_str(), last.as_str(), name)) {
                return v.clone();
            }
        } else {
            // `…::module::f(…)` — match on the full module path, then on
            // the last segment alone (re-exports, partial paths)
            let mut module = module_prefix.clone();
            module.extend(pre.iter().cloned());
            if let Some(v) = free_by_module.get(&(target_crate.as_str(), module.join("::"), name)) {
                return v.clone();
            }
            if let Some(v) = free_by_module.get(&(target_crate.as_str(), last.clone(), name)) {
                return v.clone();
            }
        }
    } else {
        let module = module_prefix.join("::");
        if let Some(v) = free_by_module.get(&(target_crate.as_str(), module, name)) {
            return v.clone();
        }
        if let Some(v) = free_by_crate.get(&(target_crate.as_str(), name)) {
            return v.clone();
        }
    }
    // generous fallback: any function with that name in the target crate
    any_by_crate
        .get(&(target_crate.as_str(), name))
        .cloned()
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser;
    use crate::rules;

    fn unit(crate_name: &str, rel_path: &str, module: &[&str], src: &str) -> FileUnit {
        let lexed = lex(src);
        let parsed = parser::parse(&lexed);
        let test_ranges = rules::test_ranges(&lexed);
        FileUnit {
            crate_name: crate_name.to_string(),
            rel_path: rel_path.to_string(),
            kind: FileKind::Lib,
            module: module.iter().map(|s| s.to_string()).collect(),
            tokens: lexed.tokens,
            parsed,
            test_ranges,
            lines: src.lines().map(|s| s.to_string()).collect(),
        }
    }

    fn crates(names: &[&str]) -> BTreeSet<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    fn edge_keys(g: &Graph, from_key: &str) -> Vec<String> {
        let from = g.nodes.iter().position(|n| n.key == from_key).unwrap();
        g.edges[from]
            .iter()
            .map(|&(t, _)| g.nodes[t].key.clone())
            .collect()
    }

    #[test]
    fn extracts_path_method_and_macro_calls() {
        let lexed =
            lex("fn f() { a::b::g(); x.m(); self.h(); vec![1]; format!(\"x\"); if (true) {} }");
        let parsed = parser::parse(&lexed);
        let calls = extract_calls(&lexed.tokens, parsed.fns[0].body);
        assert!(calls.contains(&Call {
            line: 1,
            kind: CallKind::Path(vec!["a".into(), "b".into(), "g".into()])
        }));
        assert!(calls.contains(&Call {
            line: 1,
            kind: CallKind::Method {
                name: "m".into(),
                on_self: false
            }
        }));
        assert!(calls.contains(&Call {
            line: 1,
            kind: CallKind::Method {
                name: "h".into(),
                on_self: true
            }
        }));
        assert!(calls.contains(&Call {
            line: 1,
            kind: CallKind::Macro("vec".into())
        }));
        assert!(calls.contains(&Call {
            line: 1,
            kind: CallKind::Macro("format".into())
        }));
        assert!(
            !calls
                .iter()
                .any(|c| matches!(&c.kind, CallKind::Path(p) if p == &["if".to_string()])),
            "keywords must not parse as calls"
        );
    }

    #[test]
    fn turbofish_is_a_call() {
        let lexed = lex("fn f() { helper::<u32>(1); x.collect::<Vec<_>>(); }");
        let parsed = parser::parse(&lexed);
        let calls = extract_calls(&lexed.tokens, parsed.fns[0].body);
        assert!(calls.contains(&Call {
            line: 1,
            kind: CallKind::Path(vec!["helper".into()])
        }));
        assert!(calls.contains(&Call {
            line: 1,
            kind: CallKind::Method {
                name: "collect".into(),
                on_self: false
            }
        }));
    }

    #[test]
    fn bare_and_qualified_calls_resolve_within_a_crate() {
        let a = unit(
            "ipg-sim",
            "crates/ipg-sim/src/engine.rs",
            &["engine"],
            "use crate::rng::node_stream;\nfn run() { helper(); node_stream(0, 1); }\nfn helper() {}\n",
        );
        let b = unit(
            "ipg-sim",
            "crates/ipg-sim/src/rng.rs",
            &["rng"],
            "pub fn node_stream(seed: u64, node: u32) {}\n",
        );
        let g = build(&[a, b], &crates(&["ipg-sim"]));
        assert_eq!(edge_keys(&g, "run"), vec!["helper", "node_stream"]);
    }

    #[test]
    fn cross_crate_paths_resolve() {
        let sim = unit(
            "ipg-sim",
            "crates/ipg-sim/src/engine.rs",
            &["engine"],
            "fn run() { ipg_core::fault::bfs_faulted(); }\n",
        );
        let core = unit(
            "ipg-core",
            "crates/ipg-core/src/fault.rs",
            &["fault"],
            "pub fn bfs_faulted() {}\n",
        );
        let g = build(&[sim, core], &crates(&["ipg-sim", "ipg-core"]));
        assert_eq!(edge_keys(&g, "run"), vec!["bfs_faulted"]);
    }

    #[test]
    fn self_method_calls_resolve_within_the_impl_type() {
        let src = "struct S;\nimpl S {\n fn run(&self) { self.insert(); }\n fn insert(&self) {}\n}\nstruct T;\nimpl T { fn insert(&self) {} }\n";
        let u = unit(
            "ipg-sim",
            "crates/ipg-sim/src/worklist.rs",
            &["worklist"],
            src,
        );
        let g = build(&[u], &crates(&["ipg-sim"]));
        assert_eq!(edge_keys(&g, "S::run"), vec!["S::insert"]);
    }

    #[test]
    fn skip_list_blocks_bare_name_method_resolution() {
        let src = "struct S;\nimpl S { fn run(&self, w: W) { w.insert(0); w.launch(1); } }\nstruct W;\nimpl W {\n fn insert(&self, x: u32) {}\n fn launch(&self, x: u32) {}\n}\n";
        let u = unit("ipg-sim", "crates/ipg-sim/src/engine.rs", &["engine"], src);
        let g = build(&[u], &crates(&["ipg-sim"]));
        // `.insert(` is on the skip list (std-prelude name); `.launch(` is not
        assert_eq!(edge_keys(&g, "S::run"), vec!["W::launch"]);
    }

    #[test]
    fn use_alias_resolves_type_associated_calls() {
        let sim = unit(
            "ipg-sim",
            "crates/ipg-sim/src/engine.rs",
            &["engine"],
            "use ipg_core::graph::Csr;\nfn run() { Csr::from_fn(3); }\n",
        );
        let core = unit(
            "ipg-core",
            "crates/ipg-core/src/graph.rs",
            &["graph"],
            "pub struct Csr;\nimpl Csr { pub fn from_fn(n: u32) -> Csr { Csr } }\n",
        );
        let g = build(&[sim, core], &crates(&["ipg-sim", "ipg-core"]));
        assert_eq!(edge_keys(&g, "run"), vec!["Csr::from_fn"]);
    }

    #[test]
    fn test_code_is_outside_the_graph() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests {\n fn fake() { crate::real(); }\n}\n";
        let u = unit("ipg-sim", "crates/ipg-sim/src/engine.rs", &["engine"], src);
        let g = build(&[u], &crates(&["ipg-sim"]));
        assert_eq!(g.nodes.len(), 1);
        assert_eq!(g.nodes[0].key, "real");
    }
}
