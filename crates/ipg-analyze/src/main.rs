//! CLI entry point for the workspace lint gate.
//!
//! ```text
//! ipg-analyze [--root <dir>] [--format human|json] [--rules R1,R2]
//!             [--member <crate>] [--baseline <path>] [--no-baseline]
//!             [--write-baseline] [--list-rules]
//! ```
//!
//! Exit codes: 0 clean, 2 new findings or stale baseline entries,
//! 1 usage / IO error.

use ipg_analyze::driver::{self, Config};
use ipg_analyze::report;
use ipg_analyze::rules;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(2)
            }
        }
        Err(msg) => {
            eprintln!("ipg-analyze: error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<bool, String> {
    let mut root: Option<PathBuf> = None;
    let mut format = "human".to_string();
    let mut rules_filter: Option<Vec<String>> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut write_baseline = false;
    let mut member: Option<String> = None;
    let mut use_baseline = true;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => root = Some(PathBuf::from(need(&mut it, "--root")?)),
            "--format" => {
                format = need(&mut it, "--format")?.to_string();
                if format != "human" && format != "json" {
                    return Err(format!("unknown format `{format}` (human|json)"));
                }
            }
            "--rules" => {
                let list: Vec<String> = need(&mut it, "--rules")?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
                for r in &list {
                    if !rules::known_rule(r) {
                        return Err(format!("unknown rule `{r}` (try --list-rules)"));
                    }
                }
                rules_filter = Some(list);
            }
            "--baseline" => baseline = Some(PathBuf::from(need(&mut it, "--baseline")?)),
            "--no-baseline" => use_baseline = false,
            "--member" => member = Some(need(&mut it, "--member")?.to_string()),
            "--write-baseline" => write_baseline = true,
            "--list-rules" => {
                for r in rules::all_rules() {
                    println!(
                        "{:<9} [{:<7}] {}",
                        r.id(),
                        r.severity().as_str(),
                        r.describe()
                    );
                }
                return Ok(true);
            }
            "--help" | "-h" => {
                println!(
                    "usage: ipg-analyze [--root <dir>] [--format human|json] [--rules R1,R2]\n\
                     \x20                  [--member <crate>] [--baseline <path>] [--no-baseline]\n\
                     \x20                  [--write-baseline] [--list-rules]"
                );
                return Ok(true);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }

    let root = match root {
        Some(r) => driver::find_root(&r)?,
        None => {
            driver::find_root(&std::env::current_dir().map_err(|e| format!("current_dir: {e}"))?)?
        }
    };
    let mut cfg = Config::new(root);
    if let Some(b) = baseline {
        cfg.baseline_path = b;
    }
    cfg.rules_filter = rules_filter;
    cfg.member = member;
    cfg.use_baseline = use_baseline;

    let outcome = driver::analyze(&cfg)?;

    if write_baseline {
        driver::write_baseline(&cfg, &outcome)?;
        println!(
            "ipg-analyze: wrote {} entr{} to {}",
            outcome.new.len() + outcome.baselined.len(),
            if outcome.new.len() + outcome.baselined.len() == 1 {
                "y"
            } else {
                "ies"
            },
            cfg.baseline_path.display()
        );
        return Ok(true);
    }

    match format.as_str() {
        "json" => print!("{}", report::jsonl(&outcome)),
        _ => print!("{}", report::human(&outcome)),
    }
    Ok(outcome.ok())
}

fn need<'a>(it: &mut std::slice::Iter<'a, String>, flag: &str) -> Result<&'a str, String> {
    it.next()
        .map(|s| s.as_str())
        .ok_or_else(|| format!("{flag} needs a value"))
}
