//! `ipg-analyze` — workspace determinism & hot-path lint engine.
//!
//! PR 2/3 bought this workspace bit-for-bit thread-count-invariant
//! builds and hash-free hot paths; this crate turns those conventions
//! into a machine-checked pre-PR gate. It is a self-contained,
//! dependency-free, token-level static analyzer: a hand-rolled [`lexer`]
//! (no `syn` — the workspace stays hermetic), a [`rules`] framework with
//! per-rule severity and inline suppressions, a committed JSON
//! [`baseline`] for grandfathered findings, and deterministic
//! (path+line-sorted) human / JSON-lines [`report`]s. The [`driver`]
//! walks the workspace members from the root `Cargo.toml` and exits
//! non-zero on any new finding or stale baseline entry.
//!
//! Run it as `cargo run -p ipg-analyze` (humans) or with `--format json`
//! (tools); `scripts/check.sh` runs it before clippy, and
//! `scripts/bench.sh` refuses to record numbers while any DET-class
//! finding is live. See DESIGN.md §9 for the rule table and policy.

pub mod baseline;
pub mod callgraph;
pub mod driver;
pub mod lexer;
pub mod parser;
pub mod reach;
pub mod report;
pub mod rules;
