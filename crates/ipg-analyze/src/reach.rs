//! Graph-level rules: DET100 (determinism reachability), ALLOC001
//! (cycle-loop allocation discipline), LAYER001 (crate layering).
//!
//! DET100 is the structural generalization of the token rules
//! DET003/DET004: instead of watching two files by name, it walks the
//! [`crate::callgraph`] from the engine cycle entry points
//! (`Simulator::run*`, `WormholeSim::run*`/`execute`, the phase A/B
//! bodies) and flags any *reachable* function whose body touches a
//! determinism sink — wall clocks, default-hasher collections, ad-hoc
//! RNG construction outside `ipg-sim`'s `rng` module, or fs/net I/O.
//! Each finding prints the offending call chain so the reader can see
//! how the cycle loop reaches the sink.
//!
//! The sink tables below are shared with the token rules in
//! [`crate::rules`] (DET003 ← [`CLOCK_SINKS`], DET004 ← [`RNG_SINKS`]),
//! so the file-scoped fast paths and the reachability pass can never
//! disagree about what counts as a sink.
//!
//! Boundary crates ([`BOUNDARY_CRATES`]) are not traversed: `ipg-obs` is
//! the sanctioned home for clocks and I/O, and the tool/bin crates can
//! never sit on a cycle path.

use crate::callgraph::{FileUnit, Graph};
use crate::lexer::{Tok, TokKind};
use crate::parser::FnDef;
use crate::rules::{FileKind, Finding, Severity};
use std::collections::VecDeque;

/// Wall-clock / host-introspection constructors. Shared with DET003.
pub const CLOCK_SINKS: &[&str] = &["Instant", "SystemTime", "available_parallelism"];

/// Iteration-order-unstable std collections and their hasher types.
pub const HASH_SINKS: &[&str] = &["HashMap", "HashSet", "RandomState", "DefaultHasher"];

/// Ad-hoc RNG construction. Shared with DET004. Only `ipg-sim`'s `rng`
/// module (the counter-based per-node/per-edge stream factory) may
/// construct generators.
pub const RNG_SINKS: &[&str] = &[
    "SmallRng",
    "SeedableRng",
    "seed_from_u64",
    "thread_rng",
    "from_entropy",
];

/// Filesystem / network handle types.
pub const IO_SINKS: &[&str] = &[
    "File",
    "OpenOptions",
    "TcpStream",
    "TcpListener",
    "UdpSocket",
    "UnixStream",
    "stdin",
];

/// Crates the reachability traversal stops at. `ipg-obs` is the
/// sanctioned clock/telemetry boundary (its API is deterministic from
/// the engine's point of view); the tool and bin crates cannot sit on a
/// cycle path. LAYER001 still polices what those crates may contain.
pub const BOUNDARY_CRATES: &[&str] = &["ipg-obs", "ipg-cli", "ipg-bench", "ipg-analyze"];

/// Crates allowed to perform I/O (LAYER001). Everything else —
/// `ipg-core`, `ipg-sim`, … — must stay fs/net-free in library code.
pub const IO_ALLOWED_CRATES: &[&str] = &["ipg-cli", "ipg-obs", "ipg-bench", "ipg-analyze"];

/// The pure kernel crate: additionally barred from `std::time` and from
/// referencing the observability / CLI layers at all.
pub const PURE_CRATE: &str = "ipg-core";

/// Is `f` a DET100 cycle entry point? The engines live in
/// `ipg-sim/src/{engine,wormhole}.rs`; everything named `run*` (the
/// public drivers), `phase_*` (the per-shard cycle bodies), or
/// `execute` (the wormhole main loop) seeds the traversal.
pub fn det100_entry(unit: &FileUnit, f: &FnDef) -> bool {
    unit.crate_name == "ipg-sim"
        && matches!(unit.file_name(), "engine.rs" | "wormhole.rs")
        && (f.name.starts_with("run") || f.name.starts_with("phase_") || f.name == "execute")
}

/// Is `f` an ALLOC001 entry point? Tighter than DET100: the `run*`
/// drivers legitimately allocate during setup, so only the per-cycle
/// bodies — `phase_*` in `engine.rs`, `inject`/`eject`/`step_link` in
/// `wormhole.rs` — and everything they reach are held to the
/// no-steady-state-allocation rule.
pub fn alloc_entry(unit: &FileUnit, f: &FnDef) -> bool {
    if unit.crate_name != "ipg-sim" {
        return false;
    }
    match unit.file_name() {
        "engine.rs" => f.name.starts_with("phase_"),
        "wormhole.rs" => matches!(f.name.as_str(), "inject" | "eject" | "step_link"),
        _ => false,
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum SinkKind {
    Clock,
    Hash,
    Rng,
    Io,
}

impl SinkKind {
    fn describe(self) -> &'static str {
        match self {
            SinkKind::Clock => "wall-clock",
            SinkKind::Hash => "default-hasher",
            SinkKind::Rng => "ad-hoc RNG",
            SinkKind::Io => "I/O",
        }
    }
}

struct SinkHit {
    line: u32,
    ident: String,
    kind: SinkKind,
}

/// Does `ipg-sim`'s `rng` module own this file? Its whole purpose is
/// constructing the sanctioned counter-based streams, so RNG sinks are
/// exempt there (clock/hash/IO sinks are not).
fn is_rng_module(unit: &FileUnit) -> bool {
    unit.crate_name == "ipg-sim" && unit.module == ["rng"]
}

fn ident_at(toks: &[Tok], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.kind) {
        Some(TokKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn punct_at(toks: &[Tok], i: usize, c: char) -> bool {
    matches!(toks.get(i).map(|t| &t.kind), Some(TokKind::Punct(p)) if *p == c)
}

/// `fs` / `net` / `time` only count as sinks when used as a path
/// segment (`fs::write`, `std::net::…`) — a local variable named `fs`
/// should not trip the rule.
fn is_path_segment(toks: &[Tok], i: usize) -> bool {
    let after = punct_at(toks, i + 1, ':') && punct_at(toks, i + 2, ':');
    let before = i >= 3
        && punct_at(toks, i - 1, ':')
        && punct_at(toks, i - 2, ':')
        && ident_at(toks, i - 3) == Some("std");
    after || before
}

fn scan_sinks(unit: &FileUnit, body: (usize, usize)) -> Vec<SinkHit> {
    let toks = &unit.tokens;
    let rng_exempt = is_rng_module(unit);
    let mut out = Vec::new();
    for i in body.0..body.1.min(toks.len()) {
        let Some(name) = ident_at(toks, i) else {
            continue;
        };
        let kind = if CLOCK_SINKS.contains(&name) {
            SinkKind::Clock
        } else if HASH_SINKS.contains(&name) {
            SinkKind::Hash
        } else if RNG_SINKS.contains(&name) {
            if rng_exempt {
                continue;
            }
            SinkKind::Rng
        } else if IO_SINKS.contains(&name)
            || (matches!(name, "fs" | "net") && is_path_segment(toks, i))
        {
            SinkKind::Io
        } else {
            continue;
        };
        out.push(SinkHit {
            line: toks[i].line,
            ident: name.to_string(),
            kind,
        });
    }
    out
}

fn scan_allocs(unit: &FileUnit, body: (usize, usize)) -> Vec<SinkHit> {
    let toks = &unit.tokens;
    let mut out = Vec::new();
    for i in body.0..body.1.min(toks.len()) {
        let Some(name) = ident_at(toks, i) else {
            continue;
        };
        let ident = match name {
            "Vec" | "Box"
                if punct_at(toks, i + 1, ':')
                    && punct_at(toks, i + 2, ':')
                    && ident_at(toks, i + 3) == Some("new") =>
            {
                format!("{name}::new")
            }
            "vec" | "format" if punct_at(toks, i + 1, '!') => format!("{name}!"),
            "collect" if i >= 1 && punct_at(toks, i - 1, '.') => "collect".to_string(),
            _ => continue,
        };
        out.push(SinkHit {
            line: toks[i].line,
            ident,
            kind: SinkKind::Io, // kind unused for allocs
        });
    }
    out
}

/// Multi-source BFS. Returns, per node, `Some((entry, parent))` when
/// reachable — `parent` is `None` for the entry itself, else the
/// predecessor on the discovery path. Entries are seeded in id order and
/// edges are sorted, so discovery (and therefore every printed chain)
/// is deterministic.
fn reach_from(graph: &Graph, entries: &[usize]) -> Vec<Option<(usize, Option<usize>)>> {
    let mut state: Vec<Option<(usize, Option<usize>)>> = vec![None; graph.nodes.len()];
    let mut queue = VecDeque::new();
    for &e in entries {
        if state[e].is_none() {
            state[e] = Some((e, None));
            queue.push_back(e);
        }
    }
    while let Some(u) = queue.pop_front() {
        let entry = state[u].unwrap().0;
        for &(v, _) in &graph.edges[u] {
            if state[v].is_none() {
                state[v] = Some((entry, Some(u)));
                queue.push_back(v);
            }
        }
    }
    state
}

/// Render the discovery chain `entry -> … -> node` as display keys.
fn chain(graph: &Graph, state: &[Option<(usize, Option<usize>)>], node: usize) -> String {
    let mut keys = Vec::new();
    let mut cur = node;
    loop {
        keys.push(graph.nodes[cur].key.clone());
        match state[cur] {
            Some((_, Some(parent))) => cur = parent,
            _ => break,
        }
    }
    keys.reverse();
    keys.join(" -> ")
}

/// DET100: no determinism sink reachable from a cycle entry point.
pub fn det100(files: &[FileUnit], graph: &Graph) -> Vec<Finding> {
    let entries: Vec<usize> = (0..graph.nodes.len())
        .filter(|&id| {
            let n = &graph.nodes[id];
            det100_entry(&files[n.file], &n.def)
        })
        .collect();
    let state = reach_from(graph, &entries);
    let mut out = Vec::new();
    for (id, st) in state.iter().enumerate() {
        if st.is_none() {
            continue;
        }
        let n = &graph.nodes[id];
        let unit = &files[n.file];
        for hit in scan_sinks(unit, n.def.body) {
            out.push(Finding {
                rule: "DET100",
                severity: Severity::Error,
                path: unit.rel_path.clone(),
                line: hit.line,
                message: format!(
                    "{} sink `{}` reachable from cycle entry: {}",
                    hit.kind.describe(),
                    hit.ident,
                    chain(graph, &state, id),
                ),
                snippet: unit.snippet(hit.line),
            });
        }
    }
    out
}

/// ALLOC001: no `Vec::new` / `Box::new` / `vec!` / `format!` /
/// `.collect()` in functions on a cycle-loop path.
pub fn alloc001(files: &[FileUnit], graph: &Graph) -> Vec<Finding> {
    let entries: Vec<usize> = (0..graph.nodes.len())
        .filter(|&id| {
            let n = &graph.nodes[id];
            alloc_entry(&files[n.file], &n.def)
        })
        .collect();
    let state = reach_from(graph, &entries);
    let mut out = Vec::new();
    for (id, st) in state.iter().enumerate() {
        if st.is_none() {
            continue;
        }
        let n = &graph.nodes[id];
        let unit = &files[n.file];
        for hit in scan_allocs(unit, n.def.body) {
            out.push(Finding {
                rule: "ALLOC001",
                severity: Severity::Error,
                path: unit.rel_path.clone(),
                line: hit.line,
                message: format!(
                    "allocation `{}` on cycle-loop path: {}",
                    hit.ident,
                    chain(graph, &state, id),
                ),
                snippet: unit.snippet(hit.line),
            });
        }
    }
    out
}

/// A workspace-internal dependency edge read from a member `Cargo.toml`
/// (dev-dependencies excluded — tests may depend on anything).
pub struct ManifestDep {
    pub crate_name: String,
    pub dep: String,
    /// Workspace-relative path of the manifest.
    pub rel_path: String,
    pub line: u32,
    pub snippet: String,
}

/// LAYER001: crate layering. `ipg-core` stays pure (no `std::{fs,net,
/// time}`, no references to `ipg-obs`/`ipg-cli` in source or manifest);
/// only the crates in [`IO_ALLOWED_CRATES`] may touch fs/net at all.
pub fn layer001(files: &[FileUnit], manifest_deps: &[ManifestDep]) -> Vec<Finding> {
    let mut out = Vec::new();
    for unit in files {
        if unit.rel_path.starts_with("vendor/")
            || matches!(unit.kind, FileKind::Test | FileKind::Bench)
        {
            continue;
        }
        // The multi-process frame protocol is ipg-sim's one sanctioned
        // I/O surface: its socket traffic is policed by DET008 (every
        // byte through `dist::frame`) and by the dist-determinism stage
        // of scripts/check.sh, not by the crate-level layering rule.
        if unit.rel_path.starts_with("crates/ipg-sim/src/dist/") {
            continue;
        }
        let io_allowed = IO_ALLOWED_CRATES.contains(&unit.crate_name.as_str());
        let pure = unit.crate_name == PURE_CRATE;
        if io_allowed && !pure {
            continue;
        }
        let toks = &unit.tokens;
        let mut flagged_lines: Vec<u32> = Vec::new();
        for i in 0..toks.len() {
            let Some(name) = ident_at(toks, i) else {
                continue;
            };
            let line = toks[i].line;
            if unit.in_test(line) || flagged_lines.contains(&line) {
                continue;
            }
            let message = if !io_allowed
                && (IO_SINKS.contains(&name)
                    || (matches!(name, "fs" | "net") && is_path_segment(toks, i)))
            {
                format!(
                    "layering: I/O (`{name}`) in `{}` — only {} may touch fs/net",
                    unit.crate_name,
                    IO_ALLOWED_CRATES.join("/"),
                )
            } else if pure && name == "time" && is_path_segment(toks, i) {
                format!("layering: `std::time` in `{PURE_CRATE}` — clocks live in ipg-obs")
            } else if pure && matches!(name, "ipg_obs" | "ipg_cli") {
                format!(
                    "layering: `{PURE_CRATE}` must not reference `{name}` — the kernel crate sits below the observability/CLI layers"
                )
            } else {
                continue;
            };
            flagged_lines.push(line);
            out.push(Finding {
                rule: "LAYER001",
                severity: Severity::Error,
                path: unit.rel_path.clone(),
                line,
                message,
                snippet: unit.snippet(line),
            });
        }
    }
    for dep in manifest_deps {
        if dep.crate_name == PURE_CRATE && matches!(dep.dep.as_str(), "ipg-obs" | "ipg-cli") {
            out.push(Finding {
                rule: "LAYER001",
                severity: Severity::Error,
                path: dep.rel_path.clone(),
                line: dep.line,
                message: format!(
                    "layering: `{PURE_CRATE}` declares a dependency on `{}` in its manifest",
                    dep.dep
                ),
                snippet: dep.snippet.clone(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::{self, FileUnit};
    use crate::lexer::lex;
    use crate::parser;
    use crate::rules;
    use std::collections::BTreeSet;

    fn unit(crate_name: &str, rel_path: &str, module: &[&str], src: &str) -> FileUnit {
        let lexed = lex(src);
        let parsed = parser::parse(&lexed);
        let test_ranges = rules::test_ranges(&lexed);
        FileUnit {
            crate_name: crate_name.to_string(),
            rel_path: rel_path.to_string(),
            kind: FileKind::Lib,
            module: module.iter().map(|s| s.to_string()).collect(),
            tokens: lexed.tokens,
            parsed,
            test_ranges,
            lines: src.lines().map(|s| s.to_string()).collect(),
        }
    }

    fn graph_over(files: &[FileUnit]) -> callgraph::Graph {
        let crates: BTreeSet<String> = files.iter().map(|u| u.crate_name.clone()).collect();
        callgraph::build(files, &crates)
    }

    #[test]
    fn det100_prints_the_full_call_chain() {
        let sim = unit(
            "ipg-sim",
            "crates/ipg-sim/src/engine.rs",
            &["engine"],
            "pub struct Simulator;\nimpl Simulator {\n pub fn run(&self) { helper(); }\n}\npub fn helper() { ipg_core::stamp(); }\n",
        );
        let core = unit(
            "ipg-core",
            "crates/ipg-core/src/lib.rs",
            &[],
            "pub fn stamp() -> u64 {\n let t = std::time::SystemTime::now();\n 0\n}\n",
        );
        let findings = {
            let files = [sim, core];
            det100(&files, &graph_over(&files))
        };
        assert_eq!(findings.len(), 1);
        let f = &findings[0];
        assert_eq!(f.rule, "DET100");
        assert_eq!(f.path, "crates/ipg-core/src/lib.rs");
        assert_eq!(f.line, 2);
        assert!(
            f.message.contains("Simulator::run -> helper -> stamp"),
            "chain missing from message: {}",
            f.message
        );
        assert!(f.message.contains("`SystemTime`"), "{}", f.message);
    }

    #[test]
    fn det100_ignores_unreachable_sinks_and_the_rng_module() {
        let sim = unit(
            "ipg-sim",
            "crates/ipg-sim/src/engine.rs",
            &["engine"],
            "pub struct Simulator;\nimpl Simulator {\n pub fn run(&self) { crate::rng::node_stream(1, 2); }\n}\npub fn cold_path() { let t = std::time::Instant::now(); }\n",
        );
        let rng = unit(
            "ipg-sim",
            "crates/ipg-sim/src/rng.rs",
            &["rng"],
            "pub fn node_stream(seed: u64, node: u32) -> u64 { seed_from_u64(seed ^ node as u64) }\nfn seed_from_u64(x: u64) -> u64 { x }\n",
        );
        let files = [sim, rng];
        let findings = det100(&files, &graph_over(&files));
        assert!(
            findings.is_empty(),
            "rng module must be exempt and cold_path unreachable: {:?}",
            findings.iter().map(|f| &f.message).collect::<Vec<_>>()
        );
    }

    #[test]
    fn alloc001_flags_cycle_bodies_but_not_run_setup() {
        let sim = unit(
            "ipg-sim",
            "crates/ipg-sim/src/engine.rs",
            &["engine"],
            "pub struct Shard;\nimpl Shard {\n pub fn phase_a(&mut self) { let v: Vec<u32> = Vec::new(); scratch(); }\n}\npub fn run() { let setup = Vec::new(); }\npub fn scratch() { let s = format!(\"x\"); }\n",
        );
        let files = [sim];
        let findings = alloc001(&files, &graph_over(&files));
        let idents: Vec<&str> = findings.iter().map(|f| f.rule).collect();
        assert_eq!(idents, ["ALLOC001", "ALLOC001"]);
        assert!(
            findings[0].message.contains("`Vec::new`"),
            "{}",
            findings[0].message
        );
        assert!(
            findings[1].message.contains("`format!`"),
            "{}",
            findings[1].message
        );
        assert!(
            findings[1].message.contains("Shard::phase_a -> scratch"),
            "{}",
            findings[1].message
        );
        assert!(
            !findings.iter().any(|f| f.line == 5),
            "run() setup allocation must not be flagged"
        );
    }

    #[test]
    fn layer001_polices_io_and_core_purity() {
        let core = unit(
            "ipg-core",
            "crates/ipg-core/src/graph.rs",
            &["graph"],
            "pub fn dump() { let _ = std::fs::read(\"x\"); }\npub fn t() { let _ = std::time::Duration::ZERO; }\n",
        );
        let sim = unit(
            "ipg-sim",
            "crates/ipg-sim/src/engine.rs",
            &["engine"],
            "pub fn snapshot() { let f = std::fs::File::create(\"x\"); }\n",
        );
        let obs = unit(
            "ipg-obs",
            "crates/ipg-obs/src/lib.rs",
            &[],
            "pub fn sink() { let f = std::fs::File::create(\"x\"); }\n",
        );
        let files = [core, sim, obs];
        let findings = layer001(&files, &[]);
        let got: Vec<(&str, u32)> = findings.iter().map(|f| (f.path.as_str(), f.line)).collect();
        assert_eq!(
            got,
            [
                ("crates/ipg-core/src/graph.rs", 1),
                ("crates/ipg-core/src/graph.rs", 2),
                ("crates/ipg-sim/src/engine.rs", 1),
            ]
        );
    }

    #[test]
    fn layer001_flags_manifest_deps() {
        let dep = ManifestDep {
            crate_name: "ipg-core".to_string(),
            dep: "ipg-obs".to_string(),
            rel_path: "crates/ipg-core/Cargo.toml".to_string(),
            line: 9,
            snippet: "ipg-obs = { path = \"../ipg-obs\" }".to_string(),
        };
        let findings = layer001(&[], &[dep]);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "LAYER001");
        assert_eq!(findings[0].path, "crates/ipg-core/Cargo.toml");
    }

    #[test]
    fn dist_frame_protocol_is_exempt_from_layering() {
        // ipg-sim's dist module is the sanctioned I/O surface (DET008
        // polices its byte discipline); the same socket type one
        // directory up is still a layering violation.
        let dist = unit(
            "ipg-sim",
            "crates/ipg-sim/src/dist/frame.rs",
            &["frame_send"],
            "pub fn pair() { let _ = std::os::unix::net::UnixStream::pair(); }\n",
        );
        let engine = unit(
            "ipg-sim",
            "crates/ipg-sim/src/engine.rs",
            &["engine"],
            "pub fn pair() { let _ = std::os::unix::net::UnixStream::pair(); }\n",
        );
        let files = [dist, engine];
        let findings = layer001(&files, &[]);
        let got: Vec<&str> = findings.iter().map(|f| f.path.as_str()).collect();
        assert_eq!(got, ["crates/ipg-sim/src/engine.rs"]);
    }

    #[test]
    fn test_only_io_is_exempt_from_layering() {
        let core = unit(
            "ipg-core",
            "crates/ipg-core/src/codec.rs",
            &["codec"],
            "pub fn ok() {}\n#[cfg(test)]\nmod tests {\n use std::fs;\n fn t() { let _ = fs::read(\"x\"); }\n}\n",
        );
        let files = [core];
        assert!(layer001(&files, &[]).is_empty());
    }
}
