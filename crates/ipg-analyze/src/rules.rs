//! The rule framework and the shipped rules.
//!
//! Each rule is grounded in an invariant the repo already relies on:
//!
//! | rule     | severity | invariant                                                        |
//! |----------|----------|------------------------------------------------------------------|
//! | DET001   | error    | no default-hasher `HashMap`/`HashSet` in `ipg-core` hot modules  |
//! | DET002   | error    | every parallel reduce carries a `Parallel-reduction audit:`      |
//! | DET003   | error    | no wall-clock reads outside `ipg-obs` / `vendor/rayon`           |
//! | DET004   | error    | no RNG construction in `ipg-sim` cycle loops (use `rng::node_stream`) |
//! | DET005   | error    | no raw trace-event plumbing in `ipg-sim` cycle loops (use `ShardTracer`) |
//! | DET006   | error    | no raw fault-event plumbing in `ipg-sim` cycle loops (consume `FaultPlan`) |
//! | DET007   | error    | no raw bitset mutation in `ipg-sim` cycle loops (use the `Worklist` API) |
//! | DET008   | error    | no raw socket/byte I/O in the dist coordinator/worker (all traffic via `dist::frame`) |
//! | DET100   | error    | no determinism sink *reachable* from an engine cycle entry point |
//! | LAYER001 | error    | crate layering: `ipg-core` stays pure; I/O only in the sanctioned crates |
//! | ALLOC001 | error    | no steady-state allocation in functions on a cycle-loop path     |
//! | PANIC001 | warning  | no `unwrap`/`expect`/`panic!` in library code of the core crates |
//! | HYG001   | error    | every suppression carries a `reason="…"`                         |
//!
//! DET100/LAYER001/ALLOC001 are *graph rules*: their [`Rule::check`]
//! bodies are empty and the findings come from [`crate::reach`], which
//! walks the call graph the driver builds. The token rules DET003/DET004
//! are file-scoped special cases of DET100 — they share its sink tables
//! ([`crate::reach::CLOCK_SINKS`] / [`crate::reach::RNG_SINKS`]) so the
//! fast per-file checks and the reachability pass can never disagree
//! about what counts as a sink.
//!
//! Suppression syntax (same line as the finding or the line above):
//!
//! ```text
//! // ipg-analyze: allow(DET001) reason="keys are interned; iteration order never observed"
//! ```

use crate::lexer::{Comment, Lexed, TokKind};
use crate::reach;

/// Finding severity. Both levels gate the build when the finding is new;
/// the split exists so `scripts/bench.sh` can refuse on determinism
/// (DET-class) findings specifically via `--rules`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Severity {
    Error,
    Warning,
}

impl Severity {
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    pub rule: &'static str,
    pub severity: Severity,
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    pub message: String,
    /// Trimmed source line — also the baseline matching key.
    pub snippet: String,
}

/// How a file participates in the build — some rules only apply to
/// shipped library code.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum FileKind {
    /// `src/**` of a library target.
    Lib,
    /// `src/main.rs` or `src/bin/**`.
    Bin,
    /// `tests/**`.
    Test,
    /// `benches/**`.
    Bench,
}

/// Everything a rule may look at for one file.
pub struct FileCtx<'a> {
    pub crate_name: &'a str,
    pub rel_path: &'a str,
    pub kind: FileKind,
    pub lexed: &'a Lexed,
    /// Raw source lines (for snippets).
    pub lines: &'a [String],
    /// `#[cfg(test)]` item line ranges (inclusive).
    pub test_ranges: &'a [(u32, u32)],
}

impl FileCtx<'_> {
    /// Is `line` inside a `#[cfg(test)]` item?
    pub fn in_test(&self, line: u32) -> bool {
        self.test_ranges
            .iter()
            .any(|&(a, b)| a <= line && line <= b)
    }

    /// Trimmed source text of `line`.
    pub fn snippet(&self, line: u32) -> String {
        self.lines
            .get(line as usize - 1)
            .map(|s| s.trim().to_string())
            .unwrap_or_default()
    }

    pub fn in_vendor(&self) -> bool {
        self.rel_path.starts_with("vendor/")
    }

    fn file_name(&self) -> &str {
        self.rel_path.rsplit('/').next().unwrap_or(self.rel_path)
    }
}

/// A lint rule.
pub trait Rule {
    fn id(&self) -> &'static str;
    fn severity(&self) -> Severity;
    /// One-line description for `--list-rules` and the docs.
    fn describe(&self) -> &'static str;
    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Finding>);

    /// Helper to emit a finding.
    fn emit(&self, ctx: &FileCtx<'_>, line: u32, message: String, out: &mut Vec<Finding>) {
        out.push(Finding {
            rule: self.id(),
            severity: self.severity(),
            path: ctx.rel_path.to_string(),
            line,
            message,
            snippet: ctx.snippet(line),
        });
    }
}

/// All shipped rules, in id order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(Det001),
        Box::new(Det002),
        Box::new(Det003),
        Box::new(Det004),
        Box::new(Det005),
        Box::new(Det006),
        Box::new(Det007),
        Box::new(Det008),
        Box::new(Det100),
        Box::new(Layer001),
        Box::new(Alloc001),
        Box::new(Panic001),
        Box::new(Hyg001),
    ]
}

/// Is `id` a known rule id?
pub fn known_rule(id: &str) -> bool {
    all_rules().iter().any(|r| r.id() == id)
}

// ---------------------------------------------------------------------------
// #[cfg(test)] region detection
// ---------------------------------------------------------------------------

/// Line ranges (inclusive) of items gated behind `#[cfg(test)]` (or any
/// `cfg(...)` whose argument list mentions `test`). The range runs from
/// the attribute to the matching close brace of the item's block.
pub fn test_ranges(lexed: &Lexed) -> Vec<(u32, u32)> {
    let toks = &lexed.tokens;
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        // match: # [ cfg ( … test … ) ]
        if toks[i].kind != TokKind::Punct('#') {
            i += 1;
            continue;
        }
        let start_line = toks[i].line;
        let Some(rest) = toks.get(i + 1..) else { break };
        if rest.first().map(|t| &t.kind) != Some(&TokKind::Punct('[')) {
            i += 1;
            continue;
        }
        if rest.get(1).map(|t| &t.kind) != Some(&TokKind::Ident("cfg".to_string())) {
            i += 1;
            continue;
        }
        // scan the attribute to its closing ']' looking for ident `test`
        let mut j = i + 2;
        let mut depth = 0i32;
        let mut saw_test = false;
        while j < toks.len() {
            match &toks[j].kind {
                TokKind::Punct('[') | TokKind::Punct('(') => depth += 1,
                TokKind::Punct(']') | TokKind::Punct(')') => {
                    depth -= 1;
                    if depth <= 0 && toks[j].kind == TokKind::Punct(']') {
                        break;
                    }
                }
                TokKind::Ident(s) if s == "test" => saw_test = true,
                _ => {}
            }
            j += 1;
        }
        if !saw_test {
            i = j.max(i + 1);
            continue;
        }
        // find the gated item's brace block and its matching close
        let mut k = j + 1;
        while k < toks.len() && toks[k].kind != TokKind::Punct('{') {
            if toks[k].kind == TokKind::Punct(';') {
                // braceless item (`#[cfg(test)] mod tests;`): gate that line
                out.push((start_line, toks[k].line));
                k = usize::MAX;
                break;
            }
            k += 1;
        }
        if k == usize::MAX {
            i = j + 1;
            continue;
        }
        if k >= toks.len() {
            break;
        }
        let mut brace = 0i32;
        let mut end_line = toks[k].line;
        while k < toks.len() {
            match toks[k].kind {
                TokKind::Punct('{') => brace += 1,
                TokKind::Punct('}') => {
                    brace -= 1;
                    if brace == 0 {
                        end_line = toks[k].line;
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        out.push((start_line, end_line));
        i = k.max(i + 1);
    }
    out
}

// ---------------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------------

/// A parsed, *well-formed* suppression directive.
#[derive(Clone, Debug)]
pub struct Suppression {
    pub line: u32,
    pub rule: String,
}

const ALLOW_MARKER: &str = "ipg-analyze: allow(";

/// Parse suppression directives out of the file's comments. Returns the
/// well-formed ones plus HYG001 findings for malformed ones (missing
/// `reason=`, unknown rule, unclosed paren). HYG001 itself cannot be
/// suppressed — otherwise one malformed comment could excuse another.
pub fn parse_suppressions(
    comments: &[Comment],
    ctx_path: &str,
    lines: &[String],
) -> (Vec<Suppression>, Vec<Finding>) {
    let mut sups = Vec::new();
    let mut findings = Vec::new();
    for c in comments {
        let mut text = c.text.as_str();
        while let Some(pos) = text.find(ALLOW_MARKER) {
            let after = &text[pos + ALLOW_MARKER.len()..];
            let bad = |msg: String, findings: &mut Vec<Finding>| {
                findings.push(Finding {
                    rule: "HYG001",
                    severity: Severity::Error,
                    path: ctx_path.to_string(),
                    line: c.line,
                    message: msg,
                    snippet: lines
                        .get(c.line as usize - 1)
                        .map(|s| s.trim().to_string())
                        .unwrap_or_default(),
                });
            };
            let Some(close) = after.find(')') else {
                bad(
                    "malformed suppression: missing `)`".to_string(),
                    &mut findings,
                );
                break;
            };
            let rule = after[..close].trim().to_string();
            let tail = &after[close + 1..];
            if !known_rule(&rule) {
                bad(
                    format!("suppression names unknown rule `{rule}`"),
                    &mut findings,
                );
            } else if rule == "HYG001" {
                bad("HYG001 cannot be suppressed".to_string(), &mut findings);
            } else if !has_nonempty_reason(tail) {
                bad(
                    format!("suppression of {rule} missing `reason=\"…\"` justification"),
                    &mut findings,
                );
            } else {
                sups.push(Suppression { line: c.line, rule });
            }
            text = tail;
        }
    }
    (sups, findings)
}

/// Does the directive tail carry `reason="<non-empty>"`?
fn has_nonempty_reason(tail: &str) -> bool {
    let Some(pos) = tail.find("reason=\"") else {
        return false;
    };
    let rest = &tail[pos + "reason=\"".len()..];
    match rest.find('"') {
        Some(end) => !rest[..end].trim().is_empty(),
        None => false,
    }
}

/// Is the finding covered by a suppression? A directive covers its own
/// line (trailing comment) and the line directly below it (comment above
/// the offending expression).
pub fn is_suppressed(f: &Finding, sups: &[Suppression]) -> bool {
    sups.iter()
        .any(|s| s.rule == f.rule && (s.line == f.line || s.line + 1 == f.line))
}

// ---------------------------------------------------------------------------
// DET001 — default-hasher collections in hot modules
// ---------------------------------------------------------------------------

struct Det001;

/// `ipg-core` modules on the build/route/solve hot paths, where PR 3
/// removed hashing entirely or replaced it with `util::FxHashMap`.
const HOT_MODULES: &[&str] = &[
    "graph.rs",
    "codec.rs",
    "builder.rs",
    "routing.rs",
    "tuple_routing.rs",
    "solve.rs",
];

impl Rule for Det001 {
    fn id(&self) -> &'static str {
        "DET001"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn describe(&self) -> &'static str {
        "no default-hasher HashMap/HashSet in ipg-core hot modules (use util::FxHashMap)"
    }
    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
        if ctx.crate_name != "ipg-core" || !HOT_MODULES.contains(&ctx.file_name()) {
            return;
        }
        for t in &ctx.lexed.tokens {
            let TokKind::Ident(s) = &t.kind else { continue };
            if (s == "HashMap" || s == "HashSet") && !ctx.in_test(t.line) {
                self.emit(
                    ctx,
                    t.line,
                    format!(
                        "default-hasher `{s}` in hot module; use `util::FxHashMap` \
                         or suppress with a determinism justification"
                    ),
                    out,
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// DET002 — unaudited parallel reductions
// ---------------------------------------------------------------------------

struct Det002;

const PAR_SOURCES: &[&str] = &[
    "par_iter",
    "into_par_iter",
    "par_iter_mut",
    "par_chunks",
    "par_chunks_mut",
];
const REDUCERS: &[&str] = &["reduce", "try_reduce", "sum", "fold", "try_fold"];
const AUDIT_MARKER: &str = "Parallel-reduction audit:";
/// An audit comment must end at most this many lines above the reduce.
const AUDIT_WINDOW: u32 = 10;

impl Rule for Det002 {
    fn id(&self) -> &'static str {
        "DET002"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn describe(&self) -> &'static str {
        "parallel reduce/sum/fold must carry a `Parallel-reduction audit:` comment within 10 lines"
    }
    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
        // Usage-site rule: the pool implementation itself is exempt.
        if ctx.in_vendor() {
            return;
        }
        let toks = &ctx.lexed.tokens;
        // Track the bracket depth at which a parallel iterator chain began;
        // a `;` at (or a close below) that depth ends the chain, so `;`
        // inside `map(|x| { … })` closures does not.
        let mut depth = 0i32;
        let mut chain: Option<i32> = None;
        let mut prev_dot = false;
        for t in toks {
            match &t.kind {
                TokKind::Punct(c) => {
                    match c {
                        '(' | '[' | '{' => depth += 1,
                        ')' | ']' | '}' => {
                            depth -= 1;
                            if let Some(d) = chain {
                                if depth < d {
                                    chain = None;
                                }
                            }
                        }
                        ';' if chain == Some(depth) => chain = None,
                        _ => {}
                    }
                    prev_dot = *c == '.';
                }
                TokKind::Ident(s) => {
                    if PAR_SOURCES.contains(&s.as_str()) && !ctx.in_test(t.line) {
                        chain = Some(depth);
                    } else if chain == Some(depth)
                        && prev_dot
                        && REDUCERS.contains(&s.as_str())
                        && !ctx.in_test(t.line)
                        && !audited(&ctx.lexed.comments, t.line)
                    {
                        self.emit(
                            ctx,
                            t.line,
                            format!(
                                "parallel `{s}` without a `{AUDIT_MARKER}` comment within \
                                 {AUDIT_WINDOW} lines — document associativity / chunk-order \
                                 determinism (see DESIGN.md §7)"
                            ),
                            out,
                        );
                    }
                    prev_dot = false;
                }
                _ => prev_dot = false,
            }
        }
    }
}

fn audited(comments: &[Comment], line: u32) -> bool {
    comments.iter().any(|c| {
        c.line <= line && c.end_line + AUDIT_WINDOW >= line && c.text.contains(AUDIT_MARKER)
    })
}

// ---------------------------------------------------------------------------
// DET003 — wall-clock reads outside the observability layer
// ---------------------------------------------------------------------------

struct Det003;

impl Rule for Det003 {
    fn id(&self) -> &'static str {
        "DET003"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn describe(&self) -> &'static str {
        "no Instant/SystemTime/available_parallelism outside ipg-obs and vendor/rayon"
    }
    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
        if ctx.crate_name == "ipg-obs" || ctx.rel_path.starts_with("vendor/rayon/") {
            return;
        }
        for t in &ctx.lexed.tokens {
            let TokKind::Ident(s) = &t.kind else { continue };
            // sink table shared with the DET100 reachability pass
            if reach::CLOCK_SINKS.contains(&s.as_str()) && !ctx.in_test(t.line) {
                self.emit(
                    ctx,
                    t.line,
                    format!(
                        "wall-clock access `{s}` outside ipg-obs; route timing through \
                         `Obs::span` / `Span::elapsed_secs` so core output stays \
                         clock-free"
                    ),
                    out,
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// DET004 — ad-hoc RNG construction in the simulator cycle loops
// ---------------------------------------------------------------------------

struct Det004;

/// `ipg-sim` modules whose per-cycle loops run (or may run) on worker
/// threads. Sharded determinism requires every draw to come from a
/// node-keyed counter stream built by `rng::node_stream`; naming the
/// generator here means someone is seeding ad hoc, which couples the
/// stream to shard layout or thread count.
const SHARDED_MODULES: &[&str] = &["engine.rs", "wormhole.rs"];

impl Rule for Det004 {
    fn id(&self) -> &'static str {
        "DET004"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn describe(&self) -> &'static str {
        "no global/ad-hoc RNG construction in ipg-sim shard loops (use rng::node_stream)"
    }
    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
        if ctx.crate_name != "ipg-sim" || !SHARDED_MODULES.contains(&ctx.file_name()) {
            return;
        }
        for t in &ctx.lexed.tokens {
            let TokKind::Ident(s) = &t.kind else { continue };
            // sink table shared with the DET100 reachability pass
            if reach::RNG_SINKS.contains(&s.as_str()) && !ctx.in_test(t.line) {
                self.emit(
                    ctx,
                    t.line,
                    format!(
                        "RNG construction `{s}` in a sharded simulator module; draw from \
                         the per-node counter streams via `rng::node_stream` so output \
                         is identical for every IPG_THREADS"
                    ),
                    out,
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// DET005 — raw trace-event plumbing in the simulator shard loops
// ---------------------------------------------------------------------------

struct Det005;

/// Types that belong to `ipg-obs::trace` internals. The engine's cycle
/// loops must emit through the `ShardTracer` methods instead: the tracer
/// owns the one-writer-per-ring discipline, the sampling clock and the
/// no-steady-state-allocation policy, and a shard loop that builds
/// `TraceEvent`s or drains an `EventRing` by hand can bypass all three
/// (and, worse, branch on ring occupancy — coupling simulation behaviour
/// to the trace configuration).
const TRACE_RAW_IDENTS: &[&str] = &["TraceEvent", "EventRing"];

impl Rule for Det005 {
    fn id(&self) -> &'static str {
        "DET005"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn describe(&self) -> &'static str {
        "no raw TraceEvent/EventRing plumbing in ipg-sim shard loops (emit via ShardTracer)"
    }
    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
        if ctx.crate_name != "ipg-sim" || !SHARDED_MODULES.contains(&ctx.file_name()) {
            return;
        }
        for t in &ctx.lexed.tokens {
            let TokKind::Ident(s) = &t.kind else { continue };
            if TRACE_RAW_IDENTS.contains(&s.as_str()) && !ctx.in_test(t.line) {
                self.emit(
                    ctx,
                    t.line,
                    format!(
                        "raw flight-recorder type `{s}` in a sharded simulator module; \
                         emit through the `ShardTracer` methods so the one-writer-per-ring \
                         and sampling discipline stays in ipg-obs::trace (DESIGN.md §11)"
                    ),
                    out,
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// DET006 — raw fault-event plumbing in the simulator shard loops
// ---------------------------------------------------------------------------

struct Det006;

/// Types internal to `ipg-sim::fault`'s declarative spec layer. The
/// engine/wormhole cycle loops must consume the *compiled* `FaultPlan`
/// API instead (`apply_due`, `shard_events`, `ShardFaults::next_due`): a
/// loop that matches raw `FaultEvent`s or expands `RandomFaults` itself
/// can draw RNG mid-cycle or apply kills in shard- or thread-dependent
/// order, breaking `IPG_THREADS` byte-identity.
const FAULT_RAW_IDENTS: &[&str] = &["FaultEvent", "FaultKind", "RandomFaults"];

impl Rule for Det006 {
    fn id(&self) -> &'static str {
        "DET006"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn describe(&self) -> &'static str {
        "no raw FaultEvent/FaultKind/RandomFaults plumbing in ipg-sim shard loops (consume the compiled FaultPlan)"
    }
    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
        if ctx.crate_name != "ipg-sim" || !SHARDED_MODULES.contains(&ctx.file_name()) {
            return;
        }
        for t in &ctx.lexed.tokens {
            let TokKind::Ident(s) = &t.kind else { continue };
            if FAULT_RAW_IDENTS.contains(&s.as_str()) && !ctx.in_test(t.line) {
                self.emit(
                    ctx,
                    t.line,
                    format!(
                        "raw fault-model type `{s}` in a sharded simulator module; fault \
                         decisions must flow through the compiled `FaultPlan` API \
                         (`apply_due` / `shard_events`) so kills land in plan order \
                         and no RNG is drawn mid-cycle"
                    ),
                    out,
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// DET007 — raw bitset mutation in the simulator shard loops
// ---------------------------------------------------------------------------

struct Det007;

/// Primitives internal to `ipg-sim::worklist`. The sparse cycle kernels
/// must mutate active-set membership only through the counted
/// `Worklist::insert` / `Worklist::remove` API (wrapped by the engines'
/// own enqueue/dequeue helpers): the activation invariant (DESIGN.md §13)
/// requires the bit and the underlying queue state to change together,
/// and a loop that names the backing bitset or flips bits directly can
/// desynchronize membership from occupancy — silently skipping (or
/// double-servicing) work relative to the dense oracle.
const BITSET_RAW_IDENTS: &[&str] = &["FixedBitSet", "set_bit", "clear_bit"];

impl Rule for Det007 {
    fn id(&self) -> &'static str {
        "DET007"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn describe(&self) -> &'static str {
        "no raw FixedBitSet/set_bit/clear_bit mutation in ipg-sim shard loops (use the Worklist API)"
    }
    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
        if ctx.crate_name != "ipg-sim" || !SHARDED_MODULES.contains(&ctx.file_name()) {
            return;
        }
        for t in &ctx.lexed.tokens {
            let TokKind::Ident(s) = &t.kind else { continue };
            if BITSET_RAW_IDENTS.contains(&s.as_str()) && !ctx.in_test(t.line) {
                self.emit(
                    ctx,
                    t.line,
                    format!(
                        "raw bitset access `{s}` in a sparse cycle kernel; mutate \
                         worklist membership only through `Worklist::insert` / \
                         `Worklist::remove` so the activation bit and the queue \
                         state change together (DESIGN.md §13)"
                    ),
                    out,
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// DET008 — raw I/O in the multi-process coordinator/worker protocol
// ---------------------------------------------------------------------------

struct Det008;

/// Identifiers that mean a dist protocol file is doing its own byte
/// plumbing. The coordinator/worker cycle paths must move every byte
/// through `dist::frame` (`FrameIo::frame_send` / `frame_recv`): the
/// codec owns the length-prefix/checksum discipline and the
/// read-all-then-write-all deadlock argument, and an ad-hoc
/// `write_all`/`to_le_bytes` site can ship unversioned, unchecksummed
/// bytes whose layout silently drifts from the frame tables in
/// DESIGN.md §15. `frame.rs` itself is the sanctioned home.
const DIST_RAW_IO_IDENTS: &[&str] = &[
    "read_exact",
    "write_all",
    "read_to_end",
    "flush",
    "to_le_bytes",
    "from_le_bytes",
    "to_be_bytes",
    "from_be_bytes",
    "UnixStream",
    "stdin",
];

impl Rule for Det008 {
    fn id(&self) -> &'static str {
        "DET008"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn describe(&self) -> &'static str {
        "no raw socket/byte I/O in ipg-sim dist protocol files (all traffic via dist::frame)"
    }
    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
        if ctx.crate_name != "ipg-sim"
            || !ctx.rel_path.starts_with("crates/ipg-sim/src/dist/")
            || ctx.file_name() == "frame.rs"
        {
            return;
        }
        for t in &ctx.lexed.tokens {
            let TokKind::Ident(s) = &t.kind else { continue };
            if DIST_RAW_IO_IDENTS.contains(&s.as_str()) && !ctx.in_test(t.line) {
                self.emit(
                    ctx,
                    t.line,
                    format!(
                        "raw I/O primitive `{s}` in a dist protocol file; every byte \
                         crossing the process boundary must go through the \
                         `dist::frame` codec (`FrameIo::frame_send` / `frame_recv`) \
                         so it is length-prefixed, versioned and checksummed \
                         (DESIGN.md §15)"
                    ),
                    out,
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// DET100 / LAYER001 / ALLOC001 — graph rules
// ---------------------------------------------------------------------------
//
// These three run over the workspace call graph, not file by file, so
// their findings are produced by the driver via `crate::reach`; the rule
// types here own the id/severity/docs (for `--list-rules`, `--rules`
// filtering, and suppression validation).

struct Det100;

impl Rule for Det100 {
    fn id(&self) -> &'static str {
        "DET100"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn describe(&self) -> &'static str {
        "no wall-clock/hash/RNG/I-O sink reachable from an engine cycle entry point (chain printed)"
    }
    fn check(&self, _ctx: &FileCtx<'_>, _out: &mut Vec<Finding>) {
        // handled by the driver's graph passes (crate::reach::det100)
    }
}

struct Layer001;

impl Rule for Layer001 {
    fn id(&self) -> &'static str {
        "LAYER001"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn describe(&self) -> &'static str {
        "ipg-core stays pure (no std::{fs,net,time}, no ipg-obs/ipg-cli); I/O only in cli/obs/bench"
    }
    fn check(&self, _ctx: &FileCtx<'_>, _out: &mut Vec<Finding>) {
        // handled by the driver's graph passes (crate::reach::layer001)
    }
}

struct Alloc001;

impl Rule for Alloc001 {
    fn id(&self) -> &'static str {
        "ALLOC001"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn describe(&self) -> &'static str {
        "no Vec::new/Box::new/vec!/format!/.collect() in functions on a cycle-loop path"
    }
    fn check(&self, _ctx: &FileCtx<'_>, _out: &mut Vec<Finding>) {
        // handled by the driver's graph passes (crate::reach::alloc001)
    }
}

// ---------------------------------------------------------------------------
// PANIC001 — panics in library code of the core crates
// ---------------------------------------------------------------------------

struct Panic001;

const PANIC_CRATES: &[&str] = &["ipg-core", "ipg-sim", "ipg-cluster", "ipg-networks"];

impl Rule for Panic001 {
    fn id(&self) -> &'static str {
        "PANIC001"
    }
    fn severity(&self) -> Severity {
        Severity::Warning
    }
    fn describe(&self) -> &'static str {
        "no unwrap()/expect()/panic! in non-test library code of the core crates"
    }
    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
        if !PANIC_CRATES.contains(&ctx.crate_name) || ctx.kind != FileKind::Lib {
            return;
        }
        let toks = &ctx.lexed.tokens;
        for (i, t) in toks.iter().enumerate() {
            let TokKind::Ident(s) = &t.kind else { continue };
            if ctx.in_test(t.line) {
                continue;
            }
            let prev_dot = i > 0 && toks[i - 1].kind == TokKind::Punct('.');
            let next = toks.get(i + 1).map(|t| &t.kind);
            let call = next == Some(&TokKind::Punct('('));
            let bang = next == Some(&TokKind::Punct('!'));
            let hit = match s.as_str() {
                "unwrap" | "expect" => prev_dot && call,
                "panic" => bang,
                _ => false,
            };
            if hit {
                self.emit(
                    ctx,
                    t.line,
                    format!(
                        "`{s}` in library code; return `Result` (see `IpgError`) or \
                         suppress with the invariant that makes it unreachable"
                    ),
                    out,
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// HYG001 — suppressions must be justified
// ---------------------------------------------------------------------------
//
// HYG001 findings are produced during suppression parsing (so the checks
// share one parser); the rule type exists to own the id/severity/docs.

struct Hyg001;

impl Rule for Hyg001 {
    fn id(&self) -> &'static str {
        "HYG001"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn describe(&self) -> &'static str {
        "every `ipg-analyze: allow(…)` must carry a non-empty reason=\"…\""
    }
    fn check(&self, _ctx: &FileCtx<'_>, _out: &mut Vec<Finding>) {
        // handled by parse_suppressions()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn ctx_of<'a>(
        lexed: &'a Lexed,
        lines: &'a [String],
        ranges: &'a [(u32, u32)],
        crate_name: &'a str,
        rel_path: &'a str,
        kind: FileKind,
    ) -> FileCtx<'a> {
        FileCtx {
            crate_name,
            rel_path,
            kind,
            lexed,
            lines,
            test_ranges: ranges,
        }
    }

    fn run_on(src: &str, crate_name: &str, rel_path: &str, kind: FileKind) -> Vec<Finding> {
        let lexed = lex(src);
        let lines: Vec<String> = src.lines().map(|s| s.to_string()).collect();
        let ranges = test_ranges(&lexed);
        let ctx = ctx_of(&lexed, &lines, &ranges, crate_name, rel_path, kind);
        let mut out = Vec::new();
        for r in all_rules() {
            r.check(&ctx, &mut out);
        }
        let (sups, mut hyg) = parse_suppressions(&lexed.comments, rel_path, &lines);
        out.retain(|f| !is_suppressed(f, &sups));
        out.append(&mut hyg);
        out
    }

    #[test]
    fn det001_flags_hot_modules_only() {
        let src = "use std::collections::HashMap;\n";
        let hot = run_on(
            src,
            "ipg-core",
            "crates/ipg-core/src/graph.rs",
            FileKind::Lib,
        );
        assert_eq!(hot.len(), 1);
        assert_eq!(hot[0].rule, "DET001");
        let cold = run_on(
            src,
            "ipg-core",
            "crates/ipg-core/src/algo.rs",
            FileKind::Lib,
        );
        assert!(cold.is_empty());
        let other = run_on(src, "ipg-sim", "crates/ipg-sim/src/graph.rs", FileKind::Lib);
        assert!(other.is_empty());
    }

    #[test]
    fn det002_needs_audit_within_window() {
        let bad = "fn f(v: &[u32]) -> u32 {\n v.par_iter().map(|x| {\n let y = *x;\n y\n }).reduce(|| 0, |a, b| a + b)\n}\n";
        let f = run_on(
            bad,
            "ipg-core",
            "crates/ipg-core/src/algo.rs",
            FileKind::Lib,
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "DET002");
        assert_eq!(f[0].line, 5);

        let good = "// Parallel-reduction audit: u32 sum, associative.\nfn f(v: &[u32]) -> u32 {\n v.par_iter().copied().reduce(|| 0, |a, b| a + b)\n}\n";
        assert!(run_on(
            good,
            "ipg-core",
            "crates/ipg-core/src/algo.rs",
            FileKind::Lib
        )
        .is_empty());
    }

    #[test]
    fn det002_ignores_sequential_folds_and_vendor() {
        let seq = "fn f(v: &[u32]) -> u32 { v.iter().fold(0, |a, b| a + b) }\n";
        assert!(run_on(
            seq,
            "ipg-core",
            "crates/ipg-core/src/algo.rs",
            FileKind::Lib
        )
        .is_empty());
        let vend = "fn f(v: &[u32]) -> u32 { v.par_iter().sum() }\n";
        assert!(run_on(vend, "rayon", "vendor/rayon/src/lib.rs", FileKind::Lib).is_empty());
    }

    #[test]
    fn det002_chain_survives_closure_semicolons_but_not_statement_end() {
        // the `;` ends the par statement; a later sequential fold is clean
        let src = "fn f(v: &[u32]) -> u32 {\n let s: Vec<u32> = v.par_iter().map(|x| *x).collect();\n s.iter().fold(0, |a, b| a + b)\n}\n";
        assert!(run_on(
            src,
            "ipg-core",
            "crates/ipg-core/src/algo.rs",
            FileKind::Lib
        )
        .is_empty());
    }

    #[test]
    fn det003_exempts_obs_and_vendor_rayon() {
        let src = "use std::time::Instant;\n";
        assert_eq!(
            run_on(
                src,
                "ipg-core",
                "crates/ipg-core/src/builder.rs",
                FileKind::Lib
            )
            .len(),
            1
        );
        assert!(run_on(src, "ipg-obs", "crates/ipg-obs/src/lib.rs", FileKind::Lib).is_empty());
        assert!(run_on(src, "rayon", "vendor/rayon/src/lib.rs", FileKind::Lib).is_empty());
    }

    #[test]
    fn det004_scopes_to_sharded_sim_modules() {
        let src = "use rand::rngs::SmallRng;\nfn f(seed: u64) -> SmallRng { SmallRng::seed_from_u64(seed) }\n";
        let hot = run_on(
            src,
            "ipg-sim",
            "crates/ipg-sim/src/engine.rs",
            FileKind::Lib,
        );
        assert!(hot.len() >= 2, "{hot:?}");
        assert!(hot.iter().all(|f| f.rule == "DET004"));
        // rng.rs is the one sanctioned construction site
        let sanctioned = run_on(src, "ipg-sim", "crates/ipg-sim/src/rng.rs", FileKind::Lib);
        assert!(sanctioned.is_empty(), "{sanctioned:?}");
        let other = run_on(
            src,
            "ipg-core",
            "crates/ipg-core/src/engine.rs",
            FileKind::Lib,
        );
        assert!(other.is_empty(), "{other:?}");
        // test code inside the module is exempt
        let test_only = "#[cfg(test)]\nmod tests {\n use rand::rngs::SmallRng;\n}\n";
        assert!(run_on(
            test_only,
            "ipg-sim",
            "crates/ipg-sim/src/wormhole.rs",
            FileKind::Lib
        )
        .is_empty());
    }

    #[test]
    fn det005_scopes_to_sharded_sim_modules() {
        let src = "use ipg_obs::trace::{EventRing, TraceEvent};\nfn f(ring: &mut EventRing) { ring.push(TraceEvent::default()); }\n";
        let hot = run_on(
            src,
            "ipg-sim",
            "crates/ipg-sim/src/wormhole.rs",
            FileKind::Lib,
        );
        assert!(hot.len() >= 2, "{hot:?}");
        assert!(hot.iter().all(|f| f.rule == "DET005"));
        // the trace module itself (ipg-obs) is the sanctioned home
        let home = run_on(src, "ipg-obs", "crates/ipg-obs/src/trace.rs", FileKind::Lib);
        assert!(home.is_empty(), "{home:?}");
        // the sanctioned ShardTracer API does not trip the rule
        let ok = "use ipg_obs::ShardTracer;\nfn f(t: &mut ShardTracer) { t.merge(0, 1); }\n";
        assert!(run_on(ok, "ipg-sim", "crates/ipg-sim/src/engine.rs", FileKind::Lib).is_empty());
        // test code inside the module is exempt
        let test_only = "#[cfg(test)]\nmod tests {\n use ipg_obs::trace::TraceEvent;\n}\n";
        assert!(run_on(
            test_only,
            "ipg-sim",
            "crates/ipg-sim/src/engine.rs",
            FileKind::Lib
        )
        .is_empty());
    }

    #[test]
    fn det007_scopes_to_sharded_sim_modules() {
        let src = "use crate::worklist::FixedBitSet;\nfn f(b: &mut FixedBitSet) { b.set_bit(3); b.clear_bit(4); }\n";
        let hot = run_on(
            src,
            "ipg-sim",
            "crates/ipg-sim/src/engine.rs",
            FileKind::Lib,
        );
        assert!(hot.len() >= 3, "{hot:?}");
        assert!(hot.iter().all(|f| f.rule == "DET007"));
        // worklist.rs itself is the sanctioned home of the bitset
        let home = run_on(
            src,
            "ipg-sim",
            "crates/ipg-sim/src/worklist.rs",
            FileKind::Lib,
        );
        assert!(home.is_empty(), "{home:?}");
        // the counted Worklist API does not trip the rule
        let ok = "use crate::worklist::Worklist;\nfn f(w: &mut Worklist) { w.insert(3); w.remove(4); }\n";
        assert!(run_on(
            ok,
            "ipg-sim",
            "crates/ipg-sim/src/wormhole.rs",
            FileKind::Lib
        )
        .is_empty());
        // test code inside the module is exempt
        let test_only = "#[cfg(test)]\nmod tests {\n use crate::worklist::FixedBitSet;\n}\n";
        assert!(run_on(
            test_only,
            "ipg-sim",
            "crates/ipg-sim/src/wormhole.rs",
            FileKind::Lib
        )
        .is_empty());
    }

    #[test]
    fn det008_scopes_to_dist_protocol_files() {
        let src = "use std::os::unix::net::UnixStream;\nfn f(s: &mut UnixStream, v: u32) { s.write_all(&v.to_le_bytes()).unwrap(); }\n";
        let hot = run_on(
            src,
            "ipg-sim",
            "crates/ipg-sim/src/dist/coordinator.rs",
            FileKind::Lib,
        );
        assert!(
            hot.iter().filter(|f| f.rule == "DET008").count() >= 4,
            "{hot:?}"
        );
        let hot = run_on(
            src,
            "ipg-sim",
            "crates/ipg-sim/src/dist/worker.rs",
            FileKind::Lib,
        );
        assert!(hot.iter().any(|f| f.rule == "DET008"), "{hot:?}");
        // frame.rs is the sanctioned home of the codec
        let home = run_on(
            src,
            "ipg-sim",
            "crates/ipg-sim/src/dist/frame.rs",
            FileKind::Lib,
        );
        assert!(home.iter().all(|f| f.rule != "DET008"), "{home:?}");
        // the same idents outside the dist module are not this rule's business
        let outside = run_on(src, "ipg-cli", "crates/ipg-cli/src/main.rs", FileKind::Bin);
        assert!(outside.iter().all(|f| f.rule != "DET008"), "{outside:?}");
        // the frame-level API does not trip the rule
        let ok = "use super::frame::FrameIo;\nfn f(io: &mut FrameIo) { io.note_cycle(3); }\n";
        assert!(run_on(
            ok,
            "ipg-sim",
            "crates/ipg-sim/src/dist/worker.rs",
            FileKind::Lib
        )
        .is_empty());
        // test code inside the module is exempt
        let test_only =
            "#[cfg(test)]\nmod tests {\n fn f(v: u32) -> [u8; 4] { v.to_le_bytes() }\n}\n";
        assert!(run_on(
            test_only,
            "ipg-sim",
            "crates/ipg-sim/src/dist/coordinator.rs",
            FileKind::Lib
        )
        .is_empty());
    }

    #[test]
    fn det006_scopes_to_sharded_sim_modules() {
        let src = "use crate::fault::{FaultEvent, FaultKind};\nfn f(ev: &FaultEvent) -> bool { matches!(ev.kind, FaultKind::Node(_)) }\n";
        let hot = run_on(
            src,
            "ipg-sim",
            "crates/ipg-sim/src/engine.rs",
            FileKind::Lib,
        );
        assert!(hot.len() >= 2, "{hot:?}");
        assert!(hot.iter().all(|f| f.rule == "DET006"));
        // fault.rs itself is the sanctioned home of the spec layer
        let home = run_on(src, "ipg-sim", "crates/ipg-sim/src/fault.rs", FileKind::Lib);
        assert!(home.is_empty(), "{home:?}");
        // the compiled-plan API does not trip the rule
        let ok = "use crate::fault::{FaultPlan, LocalFault, ShardFaults};\nfn f(p: &FaultPlan) -> usize { p.events().len() }\n";
        assert!(run_on(ok, "ipg-sim", "crates/ipg-sim/src/engine.rs", FileKind::Lib).is_empty());
        // test code inside the module is exempt
        let test_only = "#[cfg(test)]\nmod tests {\n use crate::fault::RandomFaults;\n}\n";
        assert!(run_on(
            test_only,
            "ipg-sim",
            "crates/ipg-sim/src/wormhole.rs",
            FileKind::Lib
        )
        .is_empty());
    }

    #[test]
    fn panic001_scopes_to_lib_code() {
        let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n#[cfg(test)]\nmod tests {\n fn g(x: Option<u32>) -> u32 { x.unwrap() }\n}\n";
        let f = run_on(
            src,
            "ipg-core",
            "crates/ipg-core/src/algo.rs",
            FileKind::Lib,
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 1);
        assert!(run_on(
            src,
            "ipg-core",
            "crates/ipg-core/src/bin/t.rs",
            FileKind::Bin
        )
        .is_empty());
        assert!(run_on(src, "ipg-cli", "crates/ipg-cli/src/spec.rs", FileKind::Lib).is_empty());
    }

    #[test]
    fn panic001_does_not_flag_unwrap_or() {
        let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n";
        assert!(run_on(
            src,
            "ipg-core",
            "crates/ipg-core/src/algo.rs",
            FileKind::Lib
        )
        .is_empty());
    }

    #[test]
    fn suppression_requires_reason() {
        let ok = "// ipg-analyze: allow(PANIC001) reason=\"index verified above\"\npub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert!(run_on(ok, "ipg-core", "crates/ipg-core/src/algo.rs", FileKind::Lib).is_empty());

        let bare =
            "// ipg-analyze: allow(PANIC001)\npub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let f = run_on(
            bare,
            "ipg-core",
            "crates/ipg-core/src/algo.rs",
            FileKind::Lib,
        );
        // the unsuppressed PANIC001 plus the HYG001 about the bare allow
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().any(|x| x.rule == "HYG001"));
        assert!(f.iter().any(|x| x.rule == "PANIC001"));
    }

    #[test]
    fn suppression_of_unknown_rule_is_hyg001() {
        let src = "// ipg-analyze: allow(NOPE001) reason=\"x\"\nfn f() {}\n";
        let f = run_on(
            src,
            "ipg-core",
            "crates/ipg-core/src/algo.rs",
            FileKind::Lib,
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "HYG001");
    }

    #[test]
    fn trailing_same_line_suppression_works() {
        let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() } // ipg-analyze: allow(PANIC001) reason=\"caller checks\"\n";
        assert!(run_on(
            src,
            "ipg-core",
            "crates/ipg-core/src/algo.rs",
            FileKind::Lib
        )
        .is_empty());
    }

    #[test]
    fn cfg_test_ranges_cover_nested_braces() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n fn b() { if true { } }\n}\nfn c() {}\n";
        let lx = lex(src);
        let r = test_ranges(&lx);
        assert_eq!(r, vec![(2, 5)]);
    }
}
