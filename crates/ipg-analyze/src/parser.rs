//! A hand-rolled *item* parser on top of [`crate::lexer`].
//!
//! The graph-level rules (DET100 / LAYER001 / ALLOC001, see
//! [`crate::reach`]) need more structure than a token stream: which
//! function a token belongs to, what `impl` block owns it, and what a
//! bare name refers to after `use` renaming. This module recovers exactly
//! that — a list of function definitions with body token ranges and a
//! flat `use`-alias table — and nothing more. It is *not* a Rust parser:
//!
//! - expression grammar is never parsed; a function body is just the
//!   token range between its braces,
//! - generics are skipped, not understood (`impl<R: Router> Simulator<R>`
//!   contributes the self-type name `Simulator`),
//! - nested `fn`s inside bodies stay part of the enclosing body (their
//!   calls are attributed to the outer function — a sound
//!   over-approximation for reachability),
//! - `macro_rules!` bodies are skipped entirely (expanded code is not
//!   visible to a source-level analyzer anyway).
//!
//! Known approximations are documented in DESIGN.md §14. The parser never
//! fails: on confusing input it advances one token and keeps going, which
//! is the right trade for linting code `rustc` already accepts.

use crate::lexer::{Lexed, Tok, TokKind};

/// One `fn` definition with a body.
#[derive(Clone, Debug)]
pub struct FnDef {
    pub name: String,
    /// `impl` self-type or `trait` name owning this fn, if any (the
    /// *last* path segment, generics stripped: `impl a::B<T>` → `B`).
    pub self_ty: Option<String>,
    /// Inline `mod` path within the file (file-level module path is
    /// derived from the file location by the caller).
    pub module: Vec<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// 1-based line of the closing body brace.
    pub end_line: u32,
    /// Token index range of the body, *excluding* the braces.
    pub body: (usize, usize),
}

/// One name made visible by a `use` declaration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UseDef {
    /// The name visible in this file (the last segment, or the `as` alias).
    pub alias: String,
    /// Full path segments as written, e.g. `["crate", "rng", "node_stream"]`.
    pub path: Vec<String>,
}

/// Parser output for one file.
#[derive(Clone, Debug, Default)]
pub struct ParsedFile {
    pub fns: Vec<FnDef>,
    pub uses: Vec<UseDef>,
}

/// Parse the item structure of a lexed file.
pub fn parse(lexed: &Lexed) -> ParsedFile {
    let mut out = ParsedFile::default();
    let toks = &lexed.tokens;
    let mut module = Vec::new();
    parse_items(toks, 0, toks.len(), &mut module, None, &mut out);
    out
}

fn ident(t: &Tok) -> Option<&str> {
    match &t.kind {
        TokKind::Ident(s) => Some(s.as_str()),
        _ => None,
    }
}

fn is_punct(t: &Tok, c: char) -> bool {
    t.kind == TokKind::Punct(c)
}

/// Index just past the brace block opening at `open` (`toks[open]` must
/// be `{`); tolerant of EOF.
fn skip_braces(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < toks.len() {
        match toks[i].kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    toks.len()
}

/// Index just past a balanced `<…>` run opening at `open`. Only used in
/// item headers (generics), where every `<` / `>` is a bracket.
fn skip_angles(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < toks.len() {
        match toks[i].kind {
            TokKind::Punct('<') => depth += 1,
            TokKind::Punct('>') => {
                depth -= 1;
                if depth <= 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    toks.len()
}

/// Scan items in `toks[i..end]`, appending fns/uses to `out`.
fn parse_items(
    toks: &[Tok],
    mut i: usize,
    end: usize,
    module: &mut Vec<String>,
    self_ty: Option<&str>,
    out: &mut ParsedFile,
) {
    while i < end {
        // attributes: `#[…]` — skip wholesale so attribute arguments
        // (`#[cfg(test)]`, doc aliases…) can't be mistaken for items
        if is_punct(&toks[i], '#') && i + 1 < end && is_punct(&toks[i + 1], '[') {
            let mut depth = 0i32;
            let mut j = i + 1;
            while j < end {
                match toks[j].kind {
                    TokKind::Punct('[') => depth += 1,
                    TokKind::Punct(']') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            i = (j + 1).min(end);
            continue;
        }
        let Some(kw) = ident(&toks[i]) else {
            i += 1;
            continue;
        };
        match kw {
            "mod" => {
                // `mod name { … }` (recurse) or `mod name;` (other file)
                let Some(name) = toks.get(i + 1).and_then(ident) else {
                    i += 1;
                    continue;
                };
                match toks.get(i + 2).map(|t| &t.kind) {
                    Some(TokKind::Punct('{')) => {
                        let close = skip_braces(toks, i + 2);
                        module.push(name.to_string());
                        parse_items(toks, i + 3, close.saturating_sub(1), module, self_ty, out);
                        module.pop();
                        i = close;
                    }
                    _ => i += 2,
                }
            }
            "impl" => {
                let (ty, body_open) = parse_impl_header(toks, i + 1, end);
                match body_open {
                    Some(open) => {
                        let close = skip_braces(toks, open);
                        parse_items(
                            toks,
                            open + 1,
                            close.saturating_sub(1),
                            module,
                            ty.as_deref(),
                            out,
                        );
                        i = close;
                    }
                    None => i += 1,
                }
            }
            "trait" => {
                let Some(name) = toks.get(i + 1).and_then(ident) else {
                    i += 1;
                    continue;
                };
                // skip supertraits / generics / where to the body brace
                let mut j = i + 2;
                while j < end && !is_punct(&toks[j], '{') && !is_punct(&toks[j], ';') {
                    if is_punct(&toks[j], '<') {
                        j = skip_angles(toks, j);
                    } else {
                        j += 1;
                    }
                }
                if j < end && is_punct(&toks[j], '{') {
                    let close = skip_braces(toks, j);
                    parse_items(
                        toks,
                        j + 1,
                        close.saturating_sub(1),
                        module,
                        Some(name),
                        out,
                    );
                    i = close;
                } else {
                    i = j + 1;
                }
            }
            "fn" => {
                let Some(name) = toks.get(i + 1).and_then(ident) else {
                    // `fn(u32) -> u32` function-pointer type — not an item
                    i += 1;
                    continue;
                };
                // signature: scan to the body `{` (or `;` for a bodiless
                // trait declaration) at paren/bracket depth 0
                let mut paren = 0i32;
                let mut bracket = 0i32;
                let mut j = i + 2;
                let mut open = None;
                while j < end {
                    match toks[j].kind {
                        TokKind::Punct('(') => paren += 1,
                        TokKind::Punct(')') => paren -= 1,
                        TokKind::Punct('[') => bracket += 1,
                        TokKind::Punct(']') => bracket -= 1,
                        TokKind::Punct('{') if paren == 0 && bracket == 0 => {
                            open = Some(j);
                            break;
                        }
                        TokKind::Punct(';') if paren == 0 && bracket == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                match open {
                    Some(open) => {
                        let close = skip_braces(toks, open);
                        out.fns.push(FnDef {
                            name: name.to_string(),
                            self_ty: self_ty.map(|s| s.to_string()),
                            module: module.clone(),
                            line: toks[i].line,
                            end_line: toks
                                .get(close.saturating_sub(1))
                                .map_or(toks[i].line, |t| t.line),
                            body: (open + 1, close.saturating_sub(1)),
                        });
                        i = close;
                    }
                    None => i = j + 1, // bodiless declaration
                }
            }
            "use" => {
                let mut j = i + 1;
                let mut prefix = Vec::new();
                parse_use_tree(toks, &mut j, end, &mut prefix, &mut out.uses);
                i = j;
            }
            "macro_rules" => {
                // `macro_rules! name { … }` — skip the whole definition
                let mut j = i + 1;
                while j < end && !is_punct(&toks[j], '{') {
                    j += 1;
                }
                i = if j < end { skip_braces(toks, j) } else { end };
            }
            _ => i += 1,
        }
    }
}

/// Parse an `impl` header starting just after the `impl` keyword.
/// Returns the self-type name (last path segment of the type after `for`,
/// or of the sole type) and the index of the body `{`.
fn parse_impl_header(toks: &[Tok], mut i: usize, end: usize) -> (Option<String>, Option<usize>) {
    // leading generics
    if i < end && is_punct(&toks[i], '<') {
        i = skip_angles(toks, i);
    }
    let mut last_seg: Option<String> = None;
    let mut after_for: Option<String> = None;
    let mut saw_for = false;
    let mut saw_where = false;
    while i < end {
        match &toks[i].kind {
            TokKind::Punct('{') => {
                let ty = if saw_for { after_for } else { last_seg };
                return (ty, Some(i));
            }
            TokKind::Punct('<') => i = skip_angles(toks, i),
            TokKind::Ident(s) if s == "where" => {
                // where-clause runs to the body brace; bounds can't
                // contain `{` and must not update the self type, so just
                // keep scanning for the brace from here on
                saw_where = true;
                i += 1;
            }
            TokKind::Ident(s) if s == "for" && !saw_where => {
                saw_for = true;
                i += 1;
            }
            TokKind::Ident(s) if s == "dyn" || s == "mut" => i += 1,
            TokKind::Ident(s) if !saw_where => {
                if saw_for {
                    after_for = Some(s.clone());
                } else {
                    last_seg = Some(s.clone());
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    (None, None)
}

/// Parse one `use` tree from `toks[*i..]` (just after `use` or inside a
/// group), with `prefix` holding the segments seen so far. Appends
/// resolved aliases and leaves `*i` past the terminating `;` (or `,` /
/// `}` when inside a group).
fn parse_use_tree(
    toks: &[Tok],
    i: &mut usize,
    end: usize,
    prefix: &mut Vec<String>,
    out: &mut Vec<UseDef>,
) {
    let depth_at_entry = prefix.len();
    let mut last: Option<String> = None;
    while *i < end {
        match &toks[*i].kind {
            TokKind::Ident(s) if s == "as" => {
                // `path as alias`
                let path: Vec<String> = prefix.iter().cloned().chain(last.take()).collect();
                *i += 1;
                if let Some(alias) = toks.get(*i).and_then(ident) {
                    out.push(UseDef {
                        alias: alias.to_string(),
                        path,
                    });
                    *i += 1;
                }
            }
            TokKind::Ident(s) => {
                if let Some(seg) = last.take() {
                    prefix.push(seg);
                }
                last = Some(s.clone());
                *i += 1;
            }
            TokKind::Punct(':') => *i += 1,
            TokKind::Punct('{') => {
                if let Some(seg) = last.take() {
                    prefix.push(seg);
                }
                *i += 1;
                loop {
                    parse_use_tree(toks, i, end, prefix, out);
                    match toks.get(*i).map(|t| &t.kind) {
                        Some(TokKind::Punct(',')) => *i += 1,
                        Some(TokKind::Punct('}')) => {
                            *i += 1;
                            break;
                        }
                        _ => break,
                    }
                }
                prefix.truncate(depth_at_entry);
                // a group ends this tree level; skip to the `;` if we're
                // at top level of the use item
                if depth_at_entry == 0 {
                    while *i < end && !is_punct(&toks[*i], ';') {
                        *i += 1;
                    }
                    *i = (*i + 1).min(end);
                }
                return;
            }
            TokKind::Punct('*') => {
                // glob — nothing nameable to record
                last = None;
                *i += 1;
            }
            TokKind::Punct(';') => {
                finish_segment(&mut last, prefix, out);
                prefix.truncate(depth_at_entry);
                *i += 1;
                return;
            }
            TokKind::Punct(',') | TokKind::Punct('}') => {
                finish_segment(&mut last, prefix, out);
                prefix.truncate(depth_at_entry);
                return;
            }
            _ => *i += 1,
        }
    }
    finish_segment(&mut last, prefix, out);
    prefix.truncate(depth_at_entry);
}

/// Record `prefix::last` as a use alias named after its final segment.
fn finish_segment(last: &mut Option<String>, prefix: &[String], out: &mut Vec<UseDef>) {
    if let Some(seg) = last.take() {
        if seg == "self" {
            // `use a::b::{self, c}` — `self` names the module itself
            if let Some(tail) = prefix.last() {
                out.push(UseDef {
                    alias: tail.clone(),
                    path: prefix.to_vec(),
                });
            }
            return;
        }
        let mut path = prefix.to_vec();
        path.push(seg.clone());
        out.push(UseDef { alias: seg, path });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> ParsedFile {
        parse(&lex(src))
    }

    fn fn_keys(p: &ParsedFile) -> Vec<String> {
        p.fns
            .iter()
            .map(|f| {
                let mut k = f.module.join("::");
                if let Some(t) = &f.self_ty {
                    if !k.is_empty() {
                        k.push_str("::");
                    }
                    k.push_str(t);
                }
                if !k.is_empty() {
                    k.push_str("::");
                }
                k.push_str(&f.name);
                k
            })
            .collect()
    }

    #[test]
    fn free_fns_and_modules() {
        let p = parse_src(
            "fn a() {}\nmod m {\n fn b() { let x = 1; }\n mod n { fn c() {} }\n}\nfn d() {}\n",
        );
        assert_eq!(fn_keys(&p), vec!["a", "m::b", "m::n::c", "d"]);
        assert_eq!(p.fns[0].line, 1);
        assert_eq!(p.fns[1].line, 3);
    }

    #[test]
    fn impl_blocks_attach_self_types() {
        let src = "struct S;\nimpl S { fn m(&self) {} }\nimpl<T: Clone> Wrap<T> { fn w(&self) {} }\nimpl Trait for S { fn t(&self) {} }\nimpl Router for &mut Detour<'_> { fn n(&self) {} }\n";
        let p = parse_src(src);
        assert_eq!(fn_keys(&p), vec!["S::m", "Wrap::w", "S::t", "Detour::n"]);
    }

    #[test]
    fn trait_default_methods_are_captured() {
        let src = "trait R: Send { fn decl(&self);\n fn with_default(&self) { self.decl() } }\n";
        let p = parse_src(src);
        assert_eq!(fn_keys(&p), vec!["R::with_default"]);
    }

    #[test]
    fn fn_bodies_have_token_ranges() {
        let src = "fn f(x: u32) -> u32 { helper(x) }\nfn helper(x: u32) -> u32 { x }\n";
        let p = parse_src(src);
        assert_eq!(p.fns.len(), 2);
        let (a, b) = p.fns[0].body;
        assert!(a < b, "body range must be non-empty");
        assert_eq!(p.fns[0].end_line, 1);
    }

    #[test]
    fn nested_fns_stay_in_the_parent_body() {
        let src = "fn outer() { fn inner() {} inner(); }\n";
        let p = parse_src(src);
        assert_eq!(fn_keys(&p), vec!["outer"]);
    }

    #[test]
    fn use_trees_flatten_with_aliases() {
        let src = "use crate::rng::node_stream;\nuse std::collections::{HashMap, HashSet as FastSet};\nuse ipg_core::graph::{self, Csr};\nuse a::b::*;\n";
        let p = parse_src(src);
        let get = |alias: &str| {
            p.uses
                .iter()
                .find(|u| u.alias == alias)
                .map(|u| u.path.join("::"))
        };
        assert_eq!(
            get("node_stream").as_deref(),
            Some("crate::rng::node_stream")
        );
        assert_eq!(get("HashMap").as_deref(), Some("std::collections::HashMap"));
        assert_eq!(get("FastSet").as_deref(), Some("std::collections::HashSet"));
        assert_eq!(get("Csr").as_deref(), Some("ipg_core::graph::Csr"));
        assert_eq!(get("graph").as_deref(), Some("ipg_core::graph"));
    }

    #[test]
    fn macro_rules_and_attributes_are_skipped() {
        let src = "#[cfg(test)]\nmacro_rules! gen { () => { fn ghost() {} }; }\n#[derive(Debug)]\nstruct S;\nfn real() {}\n";
        let p = parse_src(src);
        assert_eq!(fn_keys(&p), vec!["real"]);
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let src = "fn takes(f: fn(u32) -> u32) -> u32 { f(1) }\n";
        let p = parse_src(src);
        assert_eq!(fn_keys(&p), vec!["takes"]);
    }

    #[test]
    fn where_clauses_and_generics_do_not_confuse_the_scanner() {
        let src = "impl<R> Simulator<R> where R: Router + ?Sized {\n pub fn run<F: Fn(u32) -> u32>(&mut self, f: F) -> u32 { f(0) }\n}\n";
        let p = parse_src(src);
        assert_eq!(fn_keys(&p), vec!["Simulator::run"]);
    }
}
