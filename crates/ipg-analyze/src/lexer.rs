//! A hand-rolled token-level lexer for Rust source.
//!
//! The rules in this crate only need a *token stream with comments on the
//! side*: identifiers, punctuation, and literal markers, each tagged with
//! its source line. Strings, char literals, and comments are recognized
//! and **stripped** (their contents never produce identifier tokens), so a
//! doc comment mentioning `HashMap` or a format string containing
//! `unwrap()` can never trip a rule. No `syn`, no proc-macro machinery —
//! the workspace stays hermetic and the gate has zero dependencies.
//!
//! Handled: line comments (`//`, `///`, `//!`), nested block comments,
//! string literals with escapes (including `\`-newline continuations,
//! which still advance the line counter), raw strings `r#"…"#` with any
//! `#` count, byte strings `b"…"`, raw byte strings `br#"…"#`, C strings
//! `c"…"`/`cr#"…"#`, byte chars `b'…'`, char literals vs. lifetimes, raw
//! identifiers `r#ident`, numeric literals.

/// One lexed token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Tok {
    /// 1-based source line the token starts on.
    pub line: u32,
    pub kind: TokKind,
}

/// Token kinds. Literal contents are intentionally dropped — rules must
/// never match inside string or char literals.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokKind {
    Ident(String),
    Punct(char),
    Num,
    Str,
    CharLit,
    Lifetime,
}

/// A comment, with its text preserved (rules look for audit markers and
/// suppression directives inside comments).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (same as `line` for `//`).
    pub end_line: u32,
    /// Raw text after the comment opener (without `//` or `/*`).
    pub text: String,
}

/// Lexer output: the token stream plus all comments.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Tok>,
    pub comments: Vec<Comment>,
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_cont(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Lex `src`. Never fails: unexpected bytes become `Punct` tokens, and an
/// unterminated literal simply consumes to end of input — good enough for
/// linting code that `rustc` already accepts.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let n = b.len();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut out = Lexed::default();

    while i < n {
        let c = b[i];
        // whitespace
        if c == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // line comment
        if c == b'/' && i + 1 < n && b[i + 1] == b'/' {
            let start = i + 2;
            let mut j = start;
            while j < n && b[j] != b'\n' {
                j += 1;
            }
            out.comments.push(Comment {
                line,
                end_line: line,
                text: src[start..j].to_string(),
            });
            i = j;
            continue;
        }
        // block comment (nested)
        if c == b'/' && i + 1 < n && b[i + 1] == b'*' {
            let start_line = line;
            let start = i + 2;
            let mut j = start;
            let mut depth = 1;
            while j < n && depth > 0 {
                if b[j] == b'\n' {
                    line += 1;
                    j += 1;
                } else if b[j] == b'/' && j + 1 < n && b[j + 1] == b'*' {
                    depth += 1;
                    j += 2;
                } else if b[j] == b'*' && j + 1 < n && b[j + 1] == b'/' {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            let end = if depth == 0 { j - 2 } else { j };
            out.comments.push(Comment {
                line: start_line,
                end_line: line,
                text: src[start..end].to_string(),
            });
            i = j;
            continue;
        }
        // string literal
        if c == b'"' {
            let tline = line;
            i += 1;
            i = skip_string_body(b, i, &mut line);
            out.tokens.push(Tok {
                line: tline,
                kind: TokKind::Str,
            });
            continue;
        }
        // char literal or lifetime
        if c == b'\'' {
            let tline = line;
            if i + 1 < n && b[i + 1] == b'\\' {
                // escaped char literal: '\n', '\'', '\u{1F600}'
                i += 2;
                while i < n {
                    if b[i] == b'\\' {
                        if i + 1 < n && b[i + 1] == b'\n' {
                            line += 1;
                        }
                        i += 2;
                    } else if b[i] == b'\'' {
                        i += 1;
                        break;
                    } else {
                        if b[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                out.tokens.push(Tok {
                    line: tline,
                    kind: TokKind::CharLit,
                });
            } else if i + 1 < n && is_ident_cont(b[i + 1]) {
                // 'a' (char) vs 'abc (lifetime): scan the ident run, then
                // check for a closing quote.
                let mut j = i + 1;
                while j < n && is_ident_cont(b[j]) {
                    j += 1;
                }
                if j < n && b[j] == b'\'' {
                    out.tokens.push(Tok {
                        line: tline,
                        kind: TokKind::CharLit,
                    });
                    i = j + 1;
                } else {
                    out.tokens.push(Tok {
                        line: tline,
                        kind: TokKind::Lifetime,
                    });
                    i = j;
                }
            } else if i + 2 < n && b[i + 2] == b'\'' {
                // non-ident char literal like '(' or '.'
                out.tokens.push(Tok {
                    line: tline,
                    kind: TokKind::CharLit,
                });
                i += 3;
            } else {
                out.tokens.push(Tok {
                    line: tline,
                    kind: TokKind::Punct('\''),
                });
                i += 1;
            }
            continue;
        }
        // identifier — including raw-string / byte-string prefixes
        if is_ident_start(c) {
            let tline = line;
            let start = i;
            let mut j = i;
            while j < n && is_ident_cont(b[j]) {
                j += 1;
            }
            let ident = &src[start..j];
            // Literal prefixes. Raw flavors (`r`, `br`, `cr`) take `#`
            // fences and have no escapes; escaped flavors (`b`, `c`)
            // share the normal string-body rules. Mis-routing one of
            // these desynchronizes the token stream for the rest of the
            // file (e.g. treating `cr#"C:\"#` as an escaped string eats
            // the closing quote), so every prefix is matched explicitly.
            let is_raw_prefix = matches!(ident, "r" | "br" | "rb" | "cr");
            let is_escaped_prefix = matches!(ident, "b" | "c");
            if is_raw_prefix && j < n && (b[j] == b'"' || b[j] == b'#') {
                // count hashes, expect a quote
                let mut hashes = 0usize;
                let mut k = j;
                while k < n && b[k] == b'#' {
                    hashes += 1;
                    k += 1;
                }
                if k < n && b[k] == b'"' {
                    k += 1;
                    i = skip_raw_string_body(b, k, hashes, &mut line);
                    out.tokens.push(Tok {
                        line: tline,
                        kind: TokKind::Str,
                    });
                    continue;
                }
                // `r#ident` raw identifier — fall through as ident below
            }
            if is_escaped_prefix && j < n && b[j] == b'"' {
                i = skip_string_body(b, j + 1, &mut line);
                out.tokens.push(Tok {
                    line: tline,
                    kind: TokKind::Str,
                });
                continue;
            }
            if ident == "b" && j < n && b[j] == b'\'' {
                // byte char literal b'x' / b'\n'
                let mut k = j + 1;
                while k < n {
                    if b[k] == b'\\' {
                        if k + 1 < n && b[k + 1] == b'\n' {
                            line += 1;
                        }
                        k += 2;
                    } else if b[k] == b'\'' {
                        k += 1;
                        break;
                    } else {
                        if b[k] == b'\n' {
                            line += 1;
                        }
                        k += 1;
                    }
                }
                out.tokens.push(Tok {
                    line: tline,
                    kind: TokKind::CharLit,
                });
                i = k.min(n);
                continue;
            }
            // `r#struct` raw identifier: skip the hash, lex the ident
            if ident == "r" && j < n && b[j] == b'#' && j + 1 < n && is_ident_start(b[j + 1]) {
                let mut k = j + 1;
                while k < n && is_ident_cont(b[k]) {
                    k += 1;
                }
                out.tokens.push(Tok {
                    line: tline,
                    kind: TokKind::Ident(src[j + 1..k].to_string()),
                });
                i = k;
                continue;
            }
            out.tokens.push(Tok {
                line: tline,
                kind: TokKind::Ident(ident.to_string()),
            });
            i = j;
            continue;
        }
        // numeric literal (floats lex as Num '.' Num — fine for linting)
        if c.is_ascii_digit() {
            let tline = line;
            let mut j = i;
            while j < n && (is_ident_cont(b[j])) {
                j += 1;
            }
            out.tokens.push(Tok {
                line: tline,
                kind: TokKind::Num,
            });
            i = j;
            continue;
        }
        // anything else: single punctuation byte (multi-byte UTF-8 in
        // source outside strings/comments is not valid Rust anyway)
        out.tokens.push(Tok {
            line,
            kind: TokKind::Punct(c as char),
        });
        i += 1;
    }
    out
}

/// Skip a normal (escaped) string body starting just after the opening
/// quote; returns the index just past the closing quote.
fn skip_string_body(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    let n = b.len();
    while i < n {
        match b[i] {
            b'\\' => {
                // `\`-newline is a line continuation: the newline is part
                // of the escape but still ends a source line, so it must
                // advance the counter or every later token desyncs.
                if i + 1 < n && b[i + 1] == b'\n' {
                    *line += 1;
                }
                i += 2;
            }
            b'"' => {
                i += 1;
                break;
            }
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i.min(n)
}

/// Skip a raw-string body starting just after the opening quote; the
/// terminator is `"` followed by `hashes` `#` bytes.
fn skip_raw_string_body(b: &[u8], mut i: usize, hashes: usize, line: &mut u32) -> usize {
    let n = b.len();
    while i < n {
        if b[i] == b'\n' {
            *line += 1;
            i += 1;
            continue;
        }
        if b[i] == b'"' {
            let mut k = i + 1;
            let mut seen = 0usize;
            while k < n && seen < hashes && b[k] == b'#' {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return k;
            }
        }
        i += 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_are_stripped() {
        let src = r##"
            // HashMap in a comment
            /* nested /* HashMap */ still comment */
            let x = "HashMap in a string";
            let y = r#"raw "quoted" HashMap"#;
            let z = b"bytes HashMap";
            real_ident();
        "##;
        let ids = idents(src);
        assert!(!ids.iter().any(|s| s == "HashMap"), "{ids:?}");
        assert!(ids.iter().any(|s| s == "real_ident"));
    }

    #[test]
    fn comments_are_collected_with_lines() {
        let src = "fn a() {}\n// one\nfn b() {} // two\n/* three\nfour */\n";
        let lx = lex(src);
        assert_eq!(lx.comments.len(), 3);
        assert_eq!(lx.comments[0].line, 2);
        assert_eq!(lx.comments[0].text.trim(), "one");
        assert_eq!(lx.comments[1].line, 3);
        assert_eq!(lx.comments[2].line, 4);
        assert_eq!(lx.comments[2].end_line, 5);
        assert!(lx.comments[2].text.contains("three"));
    }

    #[test]
    fn char_vs_lifetime() {
        let lx = lex("fn f<'a>(x: &'a str) { let c = 'x'; let d = '\\n'; let e = '('; }");
        let lifetimes = lx
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        let chars = lx
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::CharLit)
            .count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 3);
    }

    #[test]
    fn line_numbers_track_multiline_literals() {
        let src = "let a = \"line\nbreak\";\nlet tail = 1;";
        let lx = lex(src);
        let tail = lx
            .tokens
            .iter()
            .find(|t| t.kind == TokKind::Ident("tail".into()))
            .unwrap();
        assert_eq!(tail.line, 3);
    }

    #[test]
    fn byte_char_and_raw_ident() {
        let ids = idents("let nl = b'\\n'; let s = r#struct_kw; q()");
        assert!(ids.contains(&"struct_kw".to_string()));
        assert!(ids.contains(&"q".to_string()));
    }

    /// Lines of all ident tokens — the span-resync probe: if a literal
    /// desynchronizes the lexer, the trailing sentinel ident vanishes or
    /// lands on the wrong line.
    fn ident_lines(src: &str) -> Vec<(u32, String)> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some((t.line, s)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn multi_hash_raw_strings_do_not_desync() {
        // closing candidates with too few hashes must not terminate early
        for src in [
            "let a = r##\"x \"# y\"##; tail();",
            "let a = r###\"a \"## b \"# c\"###; tail();",
            "let a = r#\"say \"hi\"\"#; tail();",
            "let a = r\"plain # raw\"; tail();",
        ] {
            let ids = ident_lines(src);
            assert!(
                ids.iter().any(|(_, s)| s == "tail"),
                "{src}: lost sync, idents {ids:?}"
            );
            assert!(
                !ids.iter().any(|(_, s)| s == "x" || s == "y" || s == "hi"),
                "{src}: raw-string contents leaked as idents: {ids:?}"
            );
        }
    }

    #[test]
    fn byte_and_raw_byte_strings_do_not_desync() {
        for src in [
            "let a = b\"HashMap\"; tail();",
            "let a = b\"esc \\\" quote\"; tail();",
            "let a = br#\"HashMap \"q\" z\"#; tail();",
            "let a = br##\"x \"# y\"##; tail();",
            "let a = br\"no hash\"; tail();",
        ] {
            let ids = ident_lines(src);
            assert!(
                ids.iter().any(|(_, s)| s == "tail"),
                "{src}: lost sync, idents {ids:?}"
            );
            assert!(
                !ids.iter().any(|(_, s)| s == "HashMap"),
                "{src}: literal contents leaked as idents: {ids:?}"
            );
        }
    }

    #[test]
    fn c_string_prefixes_do_not_desync() {
        // `cr#"C:\"#`: the body is raw (no escapes) — treating `\"` as an
        // escape would eat the terminator and swallow the rest of the file.
        for src in [
            "let a = c\"HashMap\"; tail();",
            "let a = cr#\"C:\\\"#; tail();",
            "let a = cr##\"x \"# y\"##; tail();",
        ] {
            let ids = ident_lines(src);
            assert!(
                ids.iter().any(|(_, s)| s == "tail"),
                "{src}: lost sync, idents {ids:?}"
            );
            assert!(
                !ids.iter()
                    .any(|(_, s)| s == "HashMap" || s == "c" || s == "cr"),
                "{src}: prefix or contents leaked as idents: {ids:?}"
            );
        }
    }

    #[test]
    fn escaped_newline_in_string_advances_line_counter() {
        // `\`-newline line continuation: the string spans two source
        // lines, so `tail` sits on line 3.
        let src = "let a = \"x \\\n  y\";\nlet tail = 1;";
        let ids = ident_lines(src);
        assert!(ids.contains(&(3, "tail".to_string())), "{ids:?}");
    }

    #[test]
    fn multiline_raw_string_line_tracking() {
        let src = "let a = r##\"one\ntwo\nthree\"##;\nlet tail = 1;";
        let ids = ident_lines(src);
        assert!(ids.contains(&(4, "tail".to_string())), "{ids:?}");
    }

    #[test]
    fn unterminated_literals_consume_to_eof_without_panicking() {
        for src in [
            "let a = r##\"never closed \"#",
            "let a = b\"open",
            "let a = b'",
            "let a = \"esc at eof \\",
            "let a = cr#\"open",
        ] {
            let lx = lex(src);
            assert!(!lx.tokens.is_empty(), "{src}: no tokens at all");
        }
    }

    #[test]
    fn punct_and_numbers() {
        let lx = lex("x.unwrap(); 0..n; 1.5f64");
        assert!(lx
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Ident("unwrap".into())));
        assert!(lx.tokens.iter().any(|t| t.kind == TokKind::Punct('.')));
        assert!(lx.tokens.iter().any(|t| t.kind == TokKind::Num));
    }
}
