//! The committed findings baseline: `results/ANALYZE_baseline.json`.
//!
//! The baseline grandfathers pre-existing findings so the gate can be
//! turned on strictly for *new* code. Policy (DESIGN.md §9): **the
//! baseline may only shrink** — entries are matched against current
//! findings by stable [`fingerprint`] (an FNV-1a hash of path, rule, and
//! *whitespace-normalized* snippet — no line numbers, no raw
//! indentation, so entries survive unrelated line drift and
//! reformatting), and an entry that no longer matches anything is
//! reported as *stale* and fails the gate until it is deleted. Every
//! entry carries a `reason` explaining why it is grandfathered rather
//! than fixed.
//!
//! **Deprecated legacy format:** baselines written before the
//! fingerprint migration carry no `fingerprint` key and are matched by
//! raw `(rule, path, snippet)` equality instead. They keep working, but
//! the report prints a deprecation note until `--write-baseline`
//! rewrites them in the fingerprinted form.
//!
//! The file is a JSON array with one flat, string-valued object per
//! entry. Parsing is hand-rolled (this crate carries no external
//! dependencies); the grammar accepted is exactly what [`render`] emits
//! plus arbitrary whitespace, which covers hand-edits that delete lines.

use crate::rules::Finding;

/// One grandfathered finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BaselineEntry {
    pub rule: String,
    pub path: String,
    /// Trimmed source line at the finding site — kept for human readers;
    /// matching goes through the fingerprint.
    pub snippet: String,
    /// Stable identity: [`fingerprint`] of `(path, rule, snippet)`.
    /// `None` for entries read from a legacy (pre-fingerprint) baseline.
    pub fingerprint: Option<String>,
    pub reason: String,
}

impl BaselineEntry {
    /// Build the (fingerprinted) entry for a finding.
    pub fn of(f: &Finding, reason: &str) -> BaselineEntry {
        BaselineEntry {
            rule: f.rule.to_string(),
            path: f.path.clone(),
            snippet: f.snippet.clone(),
            fingerprint: Some(fingerprint(f.rule, &f.path, &f.snippet)),
            reason: reason.to_string(),
        }
    }

    /// Matching key against a current finding: fingerprint when the
    /// entry has one, legacy exact-snippet equality otherwise.
    pub fn matches(&self, f: &Finding) -> bool {
        if self.rule != f.rule || self.path != f.path {
            return false;
        }
        match &self.fingerprint {
            Some(fp) => *fp == fingerprint(f.rule, &f.path, &f.snippet),
            None => self.snippet == f.snippet,
        }
    }
}

/// Collapse whitespace runs to single spaces (and trim) so a fingerprint
/// survives re-indentation and intra-line reformatting.
pub fn normalize_snippet(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// Stable finding identity: 64-bit FNV-1a over
/// `path NUL rule NUL normalized-snippet`, rendered as 16 hex digits.
/// Deliberately excludes the line number, so the baseline survives
/// unrelated edits above the finding site.
pub fn fingerprint(rule: &str, path: &str, snippet: &str) -> String {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let normalized = normalize_snippet(snippet);
    for b in path
        .bytes()
        .chain([0])
        .chain(rule.bytes())
        .chain([0])
        .chain(normalized.bytes())
    {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    format!("{h:016x}")
}

/// Serialize entries (sorted) to the committed JSON form. Always emits
/// the fingerprinted format: legacy entries without one are upgraded in
/// place, which is how `--write-baseline` migrates an old file.
pub fn render(entries: &[BaselineEntry]) -> String {
    let mut sorted: Vec<&BaselineEntry> = entries.iter().collect();
    sorted.sort_by(|a, b| (&a.path, &a.rule, &a.snippet).cmp(&(&b.path, &b.rule, &b.snippet)));
    let mut out = String::from("[\n");
    for (i, e) in sorted.iter().enumerate() {
        let fp = e
            .fingerprint
            .clone()
            .unwrap_or_else(|| fingerprint(&e.rule, &e.path, &e.snippet));
        out.push_str("  {\"rule\":");
        out.push_str(&quote(&e.rule));
        out.push_str(",\"path\":");
        out.push_str(&quote(&e.path));
        out.push_str(",\"fingerprint\":");
        out.push_str(&quote(&fp));
        out.push_str(",\"snippet\":");
        out.push_str(&quote(&e.snippet));
        out.push_str(",\"reason\":");
        out.push_str(&quote(&e.reason));
        out.push('}');
        if i + 1 < sorted.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// JSON string quoting (shared with the report writer).
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parse the baseline file. Accepts an array of flat objects whose values
/// are strings; unknown keys are ignored (forward compatibility).
pub fn parse(src: &str) -> Result<Vec<BaselineEntry>, String> {
    let mut p = Parser {
        b: src.as_bytes(),
        i: 0,
    };
    p.ws();
    p.expect(b'[')?;
    let mut entries = Vec::new();
    p.ws();
    if p.peek() == Some(b']') {
        return Ok(entries);
    }
    loop {
        p.ws();
        let obj = p.object()?;
        let get = |k: &str| -> Result<String, String> {
            obj.iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v.clone())
                .ok_or_else(|| format!("baseline entry missing `{k}`"))
        };
        let fingerprint = obj
            .iter()
            .find(|(key, _)| key == "fingerprint")
            .map(|(_, v)| v.clone());
        entries.push(BaselineEntry {
            rule: get("rule")?,
            path: get("path")?,
            snippet: get("snippet")?,
            fingerprint,
            reason: get("reason")?,
        });
        p.ws();
        match p.next() {
            Some(b',') => continue,
            Some(b']') => break,
            other => return Err(format!("expected `,` or `]`, got {other:?}")),
        }
    }
    Ok(entries)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }
    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }
    fn next(&mut self) -> Option<u8> {
        let c = self.peek();
        if c.is_some() {
            self.i += 1;
        }
        c
    }
    fn expect(&mut self, c: u8) -> Result<(), String> {
        match self.next() {
            Some(x) if x == c => Ok(()),
            other => Err(format!("expected `{}`, got {other:?}", c as char)),
        }
    }
    fn object(&mut self) -> Result<Vec<(String, String)>, String> {
        self.expect(b'{')?;
        let mut kv = Vec::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(kv);
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.expect(b':')?;
            self.ws();
            let val = self.string()?;
            kv.push((key, val));
            self.ws();
            match self.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                other => return Err(format!("expected `,` or `}}`, got {other:?}")),
            }
        }
        Ok(kv)
    }
    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                None => return Err("unterminated string".into()),
                Some(b'"') => break,
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'/') => out.push('/'),
                    Some(b'u') => {
                        let mut v = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .next()
                                .and_then(|c| (c as char).to_digit(16))
                                .ok_or("bad \\u escape")?;
                            v = v * 16 + d;
                        }
                        out.push(char::from_u32(v).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(c) if c < 0x80 => out.push(c as char),
                Some(c) => {
                    // re-assemble UTF-8 multibyte sequences byte-for-byte
                    let start = self.i - 1;
                    let len = if c >= 0xf0 {
                        4
                    } else if c >= 0xe0 {
                        3
                    } else {
                        2
                    };
                    let end = (start + len).min(self.b.len());
                    out.push_str(&String::from_utf8_lossy(&self.b[start..end]));
                    self.i = end;
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(rule: &str, path: &str, snippet: &str, reason: &str) -> BaselineEntry {
        BaselineEntry {
            rule: rule.into(),
            path: path.into(),
            snippet: snippet.into(),
            fingerprint: Some(fingerprint(rule, path, snippet)),
            reason: reason.into(),
        }
    }

    fn finding(rule: &'static str, path: &str, line: u32, snippet: &str) -> Finding {
        Finding {
            rule,
            severity: crate::rules::Severity::Error,
            path: path.into(),
            line,
            message: String::new(),
            snippet: snippet.into(),
        }
    }

    #[test]
    fn roundtrip() {
        let entries = vec![
            entry("PANIC001", "crates/x/src/lib.rs", "x.unwrap();", "legacy"),
            entry(
                "DET003",
                "crates/y/src/a.rs",
                "Instant::now()",
                "quoted \"why\"",
            ),
        ];
        let text = render(&entries);
        let back = parse(&text).unwrap();
        // render sorts by (path, rule, snippet)
        assert_eq!(back.len(), 2);
        assert!(back.contains(&entries[0]));
        assert!(back.contains(&entries[1]));
        // byte-stable: render(parse(render)) == render
        assert_eq!(render(&back), text);
    }

    #[test]
    fn empty_array_parses() {
        assert_eq!(parse("[]").unwrap(), vec![]);
        assert_eq!(parse(" [\n]\n").unwrap(), vec![]);
    }

    #[test]
    fn hand_deleting_a_line_still_parses() {
        let entries = vec![entry("A1", "p", "s", "r"), entry("B1", "q", "t", "u")];
        let text = render(&entries);
        // a human deletes the first entry line (and fixes the comma)
        let edited: String = text
            .lines()
            .filter(|l| !l.contains("\"A1\""))
            .collect::<Vec<_>>()
            .join("\n");
        let back = parse(&edited).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].rule, "B1");
    }

    #[test]
    fn escapes_survive() {
        let e = entry("R", "p", "say \"hi\"\tnow\\", "multi\nline");
        let back = parse(&render(std::slice::from_ref(&e))).unwrap();
        assert_eq!(back[0], e);
    }

    #[test]
    fn malformed_is_an_error() {
        assert!(parse("{").is_err());
        assert!(parse("[{\"rule\":\"R\"}]").is_err()); // missing keys
        assert!(parse("[{\"rule\":\"R\" \"path\":\"p\"}]").is_err());
    }

    #[test]
    fn fingerprints_ignore_line_numbers_and_whitespace() {
        let e = entry(
            "DET003",
            "crates/x/src/a.rs",
            "let t = Instant::now();",
            "r",
        );
        // the finding moved 40 lines and got re-indented — still matches
        let drifted = finding(
            "DET003",
            "crates/x/src/a.rs",
            73,
            "let t  =   Instant::now();",
        );
        assert!(e.matches(&drifted));
        // a different statement does not
        let other = finding("DET003", "crates/x/src/a.rs", 73, "let t = epoch();");
        assert!(!e.matches(&other));
        // nor the same snippet under a different rule or path
        assert!(!entry(
            "DET004",
            "crates/x/src/a.rs",
            "let t = Instant::now();",
            "r"
        )
        .matches(&drifted));
        assert!(!entry(
            "DET003",
            "crates/x/src/b.rs",
            "let t = Instant::now();",
            "r"
        )
        .matches(&drifted));
    }

    #[test]
    fn legacy_entries_parse_and_match_by_raw_snippet() {
        // pre-fingerprint on-disk form: no fingerprint key
        let legacy = "[\n  {\"rule\":\"R1\",\"path\":\"p.rs\",\"snippet\":\"x.unwrap();\",\"reason\":\"old\"}\n]\n";
        let back = parse(legacy).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].fingerprint, None);
        assert!(back[0].matches(&finding("R1", "p.rs", 5, "x.unwrap();")));
        // legacy matching is exact on the raw snippet (no normalization)
        assert!(!back[0].matches(&finding("R1", "p.rs", 5, "x.unwrap() ;")));
        // re-rendering migrates: the fingerprint key appears
        let migrated = render(&back);
        assert!(migrated.contains("\"fingerprint\":"));
        assert_eq!(
            parse(&migrated).unwrap()[0].fingerprint.as_deref(),
            Some(fingerprint("R1", "p.rs", "x.unwrap();").as_str())
        );
    }
}
