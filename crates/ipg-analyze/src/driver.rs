//! Workspace walk + analysis orchestration.
//!
//! The driver discovers crates from the root `Cargo.toml` workspace
//! `members` list (globs expanded via the filesystem), lexes every `.rs`
//! file under each member's `src/`, `tests/`, and `benches/` trees, runs
//! the rules, applies suppressions, and diffs the survivors against the
//! committed baseline. All traversal and output orders are sorted, so two
//! runs produce byte-identical reports regardless of readdir order,
//! thread count, or environment.

use crate::baseline::{self, BaselineEntry};
use crate::lexer;
use crate::rules::{self, FileCtx, FileKind, Finding};
use std::fs;
use std::path::{Path, PathBuf};

/// Analysis configuration.
pub struct Config {
    /// Workspace root (directory containing the `[workspace]` Cargo.toml).
    pub root: PathBuf,
    /// Baseline file path (absolute or root-relative).
    pub baseline_path: PathBuf,
    /// When set, only findings of these rules are reported (baseline
    /// entries for other rules are ignored too, not treated as stale).
    pub rules_filter: Option<Vec<String>>,
}

impl Config {
    pub fn new(root: PathBuf) -> Config {
        let baseline_path = root.join("results/ANALYZE_baseline.json");
        Config {
            root,
            baseline_path,
            rules_filter: None,
        }
    }
}

/// The result of one analysis run.
pub struct Outcome {
    /// Findings not covered by the baseline — these fail the gate.
    pub new: Vec<Finding>,
    /// Findings matched (and excused) by a baseline entry, with its reason.
    pub baselined: Vec<(Finding, String)>,
    /// Baseline entries that matched no finding — the code was fixed, so
    /// the entry must be deleted (the baseline may only shrink).
    pub stale: Vec<BaselineEntry>,
    /// Count of findings silenced by inline suppressions.
    pub suppressed: usize,
    /// Number of files scanned.
    pub files: usize,
}

impl Outcome {
    /// Does this run pass the gate?
    pub fn ok(&self) -> bool {
        self.new.is_empty() && self.stale.is_empty()
    }
}

/// Run the analysis.
pub fn analyze(cfg: &Config) -> Result<Outcome, String> {
    let members = workspace_members(&cfg.root)?;
    let mut findings = Vec::new();
    let mut suppressed = 0usize;
    let mut files = 0usize;
    let rule_set = rules::all_rules();

    for member in &members {
        let crate_name = crate_name(&cfg.root.join(member))?;
        for (rel, kind) in member_sources(&cfg.root, member) {
            files += 1;
            let abs = cfg.root.join(&rel);
            let src =
                fs::read_to_string(&abs).map_err(|e| format!("read {}: {e}", abs.display()))?;
            let lexed = lexer::lex(&src);
            let lines: Vec<String> = src.lines().map(|s| s.to_string()).collect();
            let test_ranges = rules::test_ranges(&lexed);
            let ctx = FileCtx {
                crate_name: &crate_name,
                rel_path: &rel,
                kind,
                lexed: &lexed,
                lines: &lines,
                test_ranges: &test_ranges,
            };
            let mut file_findings = Vec::new();
            for r in &rule_set {
                r.check(&ctx, &mut file_findings);
            }
            let (sups, mut hyg) = rules::parse_suppressions(&lexed.comments, &rel, &lines);
            let before = file_findings.len();
            file_findings.retain(|f| !rules::is_suppressed(f, &sups));
            suppressed += before - file_findings.len();
            file_findings.append(&mut hyg);
            findings.append(&mut file_findings);
        }
    }

    if let Some(filter) = &cfg.rules_filter {
        findings.retain(|f| filter.iter().any(|r| r == f.rule));
    }
    findings.sort_by(|a, b| {
        (&a.path, a.line, a.rule, &a.message).cmp(&(&b.path, b.line, b.rule, &b.message))
    });

    // Baseline diff: each entry may excuse exactly one finding.
    let baseline_abs = if cfg.baseline_path.is_absolute() {
        cfg.baseline_path.clone()
    } else {
        cfg.root.join(&cfg.baseline_path)
    };
    let mut entries: Vec<BaselineEntry> = match fs::read_to_string(&baseline_abs) {
        Ok(text) => {
            baseline::parse(&text).map_err(|e| format!("parse {}: {e}", baseline_abs.display()))?
        }
        Err(_) => Vec::new(), // no baseline file = empty baseline
    };
    if let Some(filter) = &cfg.rules_filter {
        entries.retain(|e| filter.iter().any(|r| r == &e.rule));
    }
    let mut used = vec![false; entries.len()];
    let mut new = Vec::new();
    let mut baselined = Vec::new();
    for f in findings {
        match entries
            .iter()
            .enumerate()
            .find(|(i, e)| !used[*i] && e.matches(&f))
        {
            Some((i, e)) => {
                used[i] = true;
                baselined.push((f, e.reason.clone()));
            }
            None => new.push(f),
        }
    }
    let stale: Vec<BaselineEntry> = entries
        .into_iter()
        .zip(used)
        .filter_map(|(e, u)| (!u).then_some(e))
        .collect();

    Ok(Outcome {
        new,
        baselined,
        stale,
        suppressed,
        files,
    })
}

/// Locate the workspace root by walking up from `start` to the first
/// `Cargo.toml` containing a `[workspace]` table.
pub fn find_root(start: &Path) -> Result<PathBuf, String> {
    let mut dir = start
        .canonicalize()
        .map_err(|e| format!("canonicalize {}: {e}", start.display()))?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err(format!(
                "no workspace Cargo.toml found above {}",
                start.display()
            ));
        }
    }
}

/// Workspace members from the root manifest, with `*` globs expanded and
/// the result sorted. Members without a `Cargo.toml` are skipped.
fn workspace_members(root: &Path) -> Result<Vec<String>, String> {
    let manifest = root.join("Cargo.toml");
    let text =
        fs::read_to_string(&manifest).map_err(|e| format!("read {}: {e}", manifest.display()))?;
    let list = extract_members_array(&text)
        .ok_or_else(|| format!("no workspace members array in {}", manifest.display()))?;
    let mut members = Vec::new();
    for pat in list {
        if let Some(prefix) = pat.strip_suffix("/*") {
            let dir = root.join(prefix);
            let Ok(rd) = fs::read_dir(&dir) else { continue };
            for e in rd.flatten() {
                let p = e.path();
                if p.join("Cargo.toml").is_file() {
                    if let Some(name) = p.file_name().and_then(|n| n.to_str()) {
                        members.push(format!("{prefix}/{name}"));
                    }
                }
            }
        } else if root.join(&pat).join("Cargo.toml").is_file() {
            members.push(pat);
        }
    }
    members.sort();
    members.dedup();
    Ok(members)
}

/// Pull the quoted entries out of `members = [ … ]`.
fn extract_members_array(manifest: &str) -> Option<Vec<String>> {
    let start = manifest.find("members")?;
    let open = manifest[start..].find('[')? + start;
    let close = manifest[open..].find(']')? + open;
    let mut out = Vec::new();
    let mut rest = &manifest[open + 1..close];
    while let Some(q1) = rest.find('"') {
        let after = &rest[q1 + 1..];
        let q2 = after.find('"')?;
        out.push(after[..q2].to_string());
        rest = &after[q2 + 1..];
    }
    Some(out)
}

/// `package.name` from a member manifest (falls back to the dir name).
fn crate_name(member_dir: &Path) -> Result<String, String> {
    let manifest = member_dir.join("Cargo.toml");
    let text =
        fs::read_to_string(&manifest).map_err(|e| format!("read {}: {e}", manifest.display()))?;
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("name") {
            let rest = rest.trim_start();
            if let Some(rest) = rest.strip_prefix('=') {
                let rest = rest.trim();
                if rest.len() >= 2 && rest.starts_with('"') {
                    if let Some(end) = rest[1..].find('"') {
                        return Ok(rest[1..1 + end].to_string());
                    }
                }
            }
        }
    }
    Ok(member_dir
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("unknown")
        .to_string())
}

/// All `.rs` sources of one member, as sorted `(root-relative path,
/// kind)` pairs. Fixture trees under `tests/fixtures/` are skipped —
/// they contain deliberate rule violations for the analyzer's own tests.
fn member_sources(root: &Path, member: &str) -> Vec<(String, FileKind)> {
    let mut out = Vec::new();
    for (sub, base_kind) in [
        ("src", FileKind::Lib),
        ("tests", FileKind::Test),
        ("benches", FileKind::Bench),
    ] {
        let dir = root.join(member).join(sub);
        if dir.is_dir() {
            walk(&dir, &mut |p| {
                let rel = p
                    .strip_prefix(root)
                    .unwrap_or(p)
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy().into_owned())
                    .collect::<Vec<_>>()
                    .join("/");
                if rel.contains("/tests/fixtures/") {
                    return;
                }
                let kind = if base_kind == FileKind::Lib
                    && (rel.contains("/src/bin/") || rel.ends_with("/src/main.rs"))
                {
                    FileKind::Bin
                } else {
                    base_kind
                };
                out.push((rel, kind));
            });
        }
    }
    out.sort();
    out
}

/// Depth-first sorted walk over `.rs` files.
fn walk(dir: &Path, f: &mut impl FnMut(&Path)) {
    let Ok(rd) = fs::read_dir(dir) else { return };
    let mut paths: Vec<PathBuf> = rd.flatten().map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            walk(&p, f);
        } else if p.extension().and_then(|e| e.to_str()) == Some("rs") {
            f(&p);
        }
    }
}

/// Write the current finding set (new + baselined, preserving reasons) as
/// the baseline. Returns the rendered text.
pub fn write_baseline(cfg: &Config, outcome: &Outcome) -> Result<String, String> {
    let mut entries: Vec<BaselineEntry> = Vec::new();
    for f in &outcome.new {
        entries.push(BaselineEntry {
            rule: f.rule.to_string(),
            path: f.path.clone(),
            snippet: f.snippet.clone(),
            reason: "grandfathered — justify or fix, then delete this entry".to_string(),
        });
    }
    for (f, reason) in &outcome.baselined {
        entries.push(BaselineEntry {
            rule: f.rule.to_string(),
            path: f.path.clone(),
            snippet: f.snippet.clone(),
            reason: reason.clone(),
        });
    }
    let text = baseline::render(&entries);
    let abs = if cfg.baseline_path.is_absolute() {
        cfg.baseline_path.clone()
    } else {
        cfg.root.join(&cfg.baseline_path)
    };
    if let Some(parent) = abs.parent() {
        let _ = fs::create_dir_all(parent);
    }
    fs::write(&abs, &text).map_err(|e| format!("write {}: {e}", abs.display()))?;
    Ok(text)
}
