//! Workspace walk + analysis orchestration.
//!
//! The driver discovers crates from the root `Cargo.toml` workspace
//! `members` list (globs expanded via the filesystem), then scans every
//! `.rs` file under each member's `src/`, `tests/`, and `benches/` trees
//! — lexing, item-parsing, and running the token-level rules — **in
//! parallel** over the vendored `rayon` pool. The per-file results merge
//! in input order (the pool's `collect` is chunk-order-preserving), so
//! reports are byte-identical for every `IPG_THREADS`.
//!
//! On top of the per-file scan sit the graph passes ([`crate::reach`]):
//! the call graph is built from the parsed files and DET100 / ALLOC001 /
//! LAYER001 run over it, with the same suppression and baseline
//! machinery as the token rules. Findings are diffed against the
//! committed baseline by stable fingerprint (see [`crate::baseline`]).

use crate::baseline::{self, BaselineEntry};
use crate::callgraph::{self, FileUnit};
use crate::lexer;
use crate::parser;
use crate::reach::{self, ManifestDep};
use crate::rules::{self, FileCtx, FileKind, Finding, Suppression};
use rayon::prelude::*;
use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

/// Analysis configuration.
pub struct Config {
    /// Workspace root (directory containing the `[workspace]` Cargo.toml).
    pub root: PathBuf,
    /// Baseline file path (absolute or root-relative).
    pub baseline_path: PathBuf,
    /// When set, only findings of these rules are reported (baseline
    /// entries for other rules are ignored too, not treated as stale).
    pub rules_filter: Option<Vec<String>>,
    /// When set, only analyze the member whose crate name (or directory
    /// name) matches — the self-lint stage runs with `ipg-analyze` here.
    pub member: Option<String>,
    /// When false, skip the baseline entirely: every finding is new.
    pub use_baseline: bool,
}

impl Config {
    pub fn new(root: PathBuf) -> Config {
        let baseline_path = root.join("results/ANALYZE_baseline.json");
        Config {
            root,
            baseline_path,
            rules_filter: None,
            member: None,
            use_baseline: true,
        }
    }
}

/// The result of one analysis run.
pub struct Outcome {
    /// Findings not covered by the baseline — these fail the gate.
    pub new: Vec<Finding>,
    /// Findings matched (and excused) by a baseline entry, with its reason.
    pub baselined: Vec<(Finding, String)>,
    /// Baseline entries that matched no finding — the code was fixed, so
    /// the entry must be deleted (the baseline may only shrink).
    pub stale: Vec<BaselineEntry>,
    /// Count of findings silenced by inline suppressions.
    pub suppressed: usize,
    /// Number of files scanned.
    pub files: usize,
    /// Baseline entries still in the pre-fingerprint format (matched by
    /// raw snippet). They keep working, but the report carries a
    /// deprecation note until `--write-baseline` rewrites them.
    pub legacy_baseline: usize,
}

impl Outcome {
    /// Does this run pass the gate?
    pub fn ok(&self) -> bool {
        self.new.is_empty() && self.stale.is_empty()
    }
}

/// Everything one parallel scan task produces for one file.
struct FileScan {
    unit: FileUnit,
    /// Token-rule findings, suppressions already applied.
    findings: Vec<Finding>,
    /// Well-formed suppressions (kept for the graph passes).
    sups: Vec<Suppression>,
    /// How many token-rule findings the suppressions silenced.
    suppressed: usize,
}

/// Run the analysis.
pub fn analyze(cfg: &Config) -> Result<Outcome, String> {
    let members = workspace_members(&cfg.root)?;

    // member list → flat file job list (jobs are sorted: members are
    // sorted and member_sources sorts within each member)
    let mut jobs: Vec<(String, String, FileKind)> = Vec::new(); // (crate, rel, kind)
    let mut manifest_deps: Vec<ManifestDep> = Vec::new();
    for member in &members {
        let crate_name = crate_name(&cfg.root.join(member))?;
        if let Some(only) = &cfg.member {
            let dir_name = member.rsplit('/').next().unwrap_or(member);
            if only != &crate_name && only != dir_name {
                continue;
            }
        }
        manifest_deps.extend(member_manifest_deps(&cfg.root, member, &crate_name));
        for (rel, kind) in member_sources(&cfg.root, member) {
            jobs.push((crate_name.clone(), rel, kind));
        }
    }

    // parallel per-file scan; `collect` preserves job order, so the merge
    // below is deterministic for every IPG_THREADS
    let root = cfg.root.clone();
    let scans: Vec<Result<FileScan, String>> = jobs
        .into_par_iter()
        .map(move |(crate_name, rel, kind)| scan_file(&root, crate_name, rel, kind))
        .collect();

    let mut findings = Vec::new();
    let mut units: Vec<FileUnit> = Vec::new();
    let mut all_sups: Vec<Vec<Suppression>> = Vec::new();
    let mut suppressed = 0usize;
    let mut files = 0usize;
    for scan in scans {
        let mut scan = scan?;
        files += 1;
        suppressed += scan.suppressed;
        findings.append(&mut scan.findings);
        all_sups.push(scan.sups);
        units.push(scan.unit);
    }

    // graph passes: DET100 / ALLOC001 over the call graph, LAYER001 over
    // files + manifests
    let graph_crates: BTreeSet<String> = units
        .iter()
        .filter(|u| {
            !u.rel_path.starts_with("vendor/")
                && !reach::BOUNDARY_CRATES.contains(&u.crate_name.as_str())
        })
        .map(|u| u.crate_name.clone())
        .collect();
    let graph = callgraph::build(&units, &graph_crates);
    let mut graph_findings = reach::det100(&units, &graph);
    graph_findings.extend(reach::alloc001(&units, &graph));
    graph_findings.extend(reach::layer001(&units, &manifest_deps));
    for f in graph_findings {
        let sups = units
            .iter()
            .position(|u| u.rel_path == f.path)
            .map(|i| all_sups[i].as_slice())
            .unwrap_or(&[]);
        if rules::is_suppressed(&f, sups) {
            suppressed += 1;
        } else {
            findings.push(f);
        }
    }

    if let Some(filter) = &cfg.rules_filter {
        findings.retain(|f| filter.iter().any(|r| r == f.rule));
    }
    findings.sort_by(|a, b| {
        (&a.path, a.line, a.rule, &a.message).cmp(&(&b.path, b.line, b.rule, &b.message))
    });

    // Baseline diff: each entry may excuse exactly one finding.
    let baseline_abs = if cfg.baseline_path.is_absolute() {
        cfg.baseline_path.clone()
    } else {
        cfg.root.join(&cfg.baseline_path)
    };
    let mut entries: Vec<BaselineEntry> = if cfg.use_baseline {
        match fs::read_to_string(&baseline_abs) {
            Ok(text) => baseline::parse(&text)
                .map_err(|e| format!("parse {}: {e}", baseline_abs.display()))?,
            Err(_) => Vec::new(), // no baseline file = empty baseline
        }
    } else {
        Vec::new()
    };
    if let Some(filter) = &cfg.rules_filter {
        entries.retain(|e| filter.iter().any(|r| r == &e.rule));
    }
    let legacy_baseline = entries.iter().filter(|e| e.fingerprint.is_none()).count();
    let mut used = vec![false; entries.len()];
    let mut new = Vec::new();
    let mut baselined = Vec::new();
    for f in findings {
        match entries
            .iter()
            .enumerate()
            .find(|(i, e)| !used[*i] && e.matches(&f))
        {
            Some((i, e)) => {
                used[i] = true;
                baselined.push((f, e.reason.clone()));
            }
            None => new.push(f),
        }
    }
    let stale: Vec<BaselineEntry> = entries
        .into_iter()
        .zip(used)
        .filter_map(|(e, u)| (!u).then_some(e))
        .collect();

    Ok(Outcome {
        new,
        baselined,
        stale,
        suppressed,
        files,
        legacy_baseline,
    })
}

/// Lex, parse, and token-lint one file. Pure function of the file
/// contents — safe to run on any pool worker.
fn scan_file(
    root: &Path,
    crate_name: String,
    rel: String,
    kind: FileKind,
) -> Result<FileScan, String> {
    let abs = root.join(&rel);
    let src = fs::read_to_string(&abs).map_err(|e| format!("read {}: {e}", abs.display()))?;
    let lexed = lexer::lex(&src);
    let lines: Vec<String> = src.lines().map(|s| s.to_string()).collect();
    let test_ranges = rules::test_ranges(&lexed);
    let ctx = FileCtx {
        crate_name: &crate_name,
        rel_path: &rel,
        kind,
        lexed: &lexed,
        lines: &lines,
        test_ranges: &test_ranges,
    };
    let mut findings = Vec::new();
    for r in rules::all_rules() {
        r.check(&ctx, &mut findings);
    }
    let (sups, mut hyg) = rules::parse_suppressions(&lexed.comments, &rel, &lines);
    let before = findings.len();
    findings.retain(|f| !rules::is_suppressed(f, &sups));
    let suppressed = before - findings.len();
    findings.append(&mut hyg);
    let parsed = parser::parse(&lexed);
    let module = module_path(&rel);
    Ok(FileScan {
        unit: FileUnit {
            crate_name,
            rel_path: rel,
            kind,
            module,
            tokens: lexed.tokens,
            parsed,
            test_ranges,
            lines,
        },
        findings,
        sups,
        suppressed,
    })
}

/// File-level module path from the location under `src/`:
/// `…/src/engine.rs` → `["engine"]`, `…/src/lib.rs` → `[]`,
/// `…/src/foo/mod.rs` → `["foo"]`.
fn module_path(rel: &str) -> Vec<String> {
    let Some(pos) = rel.find("/src/") else {
        return Vec::new();
    };
    let rest = &rel[pos + "/src/".len()..];
    let rest = rest.strip_suffix(".rs").unwrap_or(rest);
    let mut parts: Vec<&str> = rest.split('/').collect();
    if parts.last() == Some(&"mod") {
        parts.pop();
    }
    if parts == ["lib"] || parts == ["main"] {
        return Vec::new();
    }
    parts.into_iter().map(|s| s.to_string()).collect()
}

/// Locate the workspace root by walking up from `start` to the first
/// `Cargo.toml` containing a `[workspace]` table.
pub fn find_root(start: &Path) -> Result<PathBuf, String> {
    let mut dir = start
        .canonicalize()
        .map_err(|e| format!("canonicalize {}: {e}", start.display()))?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err(format!(
                "no workspace Cargo.toml found above {}",
                start.display()
            ));
        }
    }
}

/// Workspace members from the root manifest, with `*` globs expanded and
/// the result sorted. Members without a `Cargo.toml` are skipped.
fn workspace_members(root: &Path) -> Result<Vec<String>, String> {
    let manifest = root.join("Cargo.toml");
    let text =
        fs::read_to_string(&manifest).map_err(|e| format!("read {}: {e}", manifest.display()))?;
    let list = extract_members_array(&text)
        .ok_or_else(|| format!("no workspace members array in {}", manifest.display()))?;
    let mut members = Vec::new();
    for pat in list {
        if let Some(prefix) = pat.strip_suffix("/*") {
            let dir = root.join(prefix);
            let Ok(rd) = fs::read_dir(&dir) else { continue };
            for e in rd.flatten() {
                let p = e.path();
                if p.join("Cargo.toml").is_file() {
                    if let Some(name) = p.file_name().and_then(|n| n.to_str()) {
                        members.push(format!("{prefix}/{name}"));
                    }
                }
            }
        } else if root.join(&pat).join("Cargo.toml").is_file() {
            members.push(pat);
        }
    }
    members.sort();
    members.dedup();
    Ok(members)
}

/// Pull the quoted entries out of `members = [ … ]`.
fn extract_members_array(manifest: &str) -> Option<Vec<String>> {
    let start = manifest.find("members")?;
    let open = manifest[start..].find('[')? + start;
    let close = manifest[open..].find(']')? + open;
    let mut out = Vec::new();
    let mut rest = &manifest[open + 1..close];
    while let Some(q1) = rest.find('"') {
        let after = &rest[q1 + 1..];
        let q2 = after.find('"')?;
        out.push(after[..q2].to_string());
        rest = &after[q2 + 1..];
    }
    Some(out)
}

/// `package.name` from a member manifest (falls back to the dir name).
fn crate_name(member_dir: &Path) -> Result<String, String> {
    let manifest = member_dir.join("Cargo.toml");
    let text =
        fs::read_to_string(&manifest).map_err(|e| format!("read {}: {e}", manifest.display()))?;
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("name") {
            let rest = rest.trim_start();
            if let Some(rest) = rest.strip_prefix('=') {
                let rest = rest.trim();
                if rest.len() >= 2 && rest.starts_with('"') {
                    if let Some(end) = rest[1..].find('"') {
                        return Ok(rest[1..1 + end].to_string());
                    }
                }
            }
        }
    }
    Ok(member_dir
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("unknown")
        .to_string())
}

/// `[dependencies]` entries from a member manifest, as [`ManifestDep`]s
/// for the layering pass. `[dev-dependencies]` are deliberately skipped —
/// tests may depend on anything.
fn member_manifest_deps(root: &Path, member: &str, crate_name: &str) -> Vec<ManifestDep> {
    let rel = format!("{member}/Cargo.toml");
    let Ok(text) = fs::read_to_string(root.join(&rel)) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let mut in_deps = false;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('[') {
            in_deps = line == "[dependencies]";
            continue;
        }
        if !in_deps || line.is_empty() || line.starts_with('#') {
            continue;
        }
        // `name = …` or `name.workspace = true`; names may be quoted
        let head = line
            .split(['=', '.'])
            .next()
            .unwrap_or("")
            .trim()
            .trim_matches('"');
        if !head.is_empty() {
            out.push(ManifestDep {
                crate_name: crate_name.to_string(),
                dep: head.to_string(),
                rel_path: rel.clone(),
                line: idx as u32 + 1,
                snippet: line.to_string(),
            });
        }
    }
    out
}

/// All `.rs` sources of one member, as sorted `(root-relative path,
/// kind)` pairs. Fixture trees under `tests/fixtures/` are skipped —
/// they contain deliberate rule violations for the analyzer's own tests.
fn member_sources(root: &Path, member: &str) -> Vec<(String, FileKind)> {
    let mut out = Vec::new();
    for (sub, base_kind) in [
        ("src", FileKind::Lib),
        ("tests", FileKind::Test),
        ("benches", FileKind::Bench),
    ] {
        let dir = root.join(member).join(sub);
        if dir.is_dir() {
            walk(&dir, &mut |p| {
                let rel = p
                    .strip_prefix(root)
                    .unwrap_or(p)
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy().into_owned())
                    .collect::<Vec<_>>()
                    .join("/");
                if rel.contains("/tests/fixtures/") {
                    return;
                }
                let kind = if base_kind == FileKind::Lib
                    && (rel.contains("/src/bin/") || rel.ends_with("/src/main.rs"))
                {
                    FileKind::Bin
                } else {
                    base_kind
                };
                out.push((rel, kind));
            });
        }
    }
    out.sort();
    out
}

/// Depth-first sorted walk over `.rs` files.
fn walk(dir: &Path, f: &mut impl FnMut(&Path)) {
    let Ok(rd) = fs::read_dir(dir) else { return };
    let mut paths: Vec<PathBuf> = rd.flatten().map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            walk(&p, f);
        } else if p.extension().and_then(|e| e.to_str()) == Some("rs") {
            f(&p);
        }
    }
}

/// Write the current finding set (new + baselined, preserving reasons) as
/// the baseline. Entries are always written in the fingerprinted format,
/// so this is also the migration path for legacy baselines. Returns the
/// rendered text.
pub fn write_baseline(cfg: &Config, outcome: &Outcome) -> Result<String, String> {
    let mut entries: Vec<BaselineEntry> = Vec::new();
    for f in &outcome.new {
        entries.push(BaselineEntry::of(
            f,
            "grandfathered — justify or fix, then delete this entry",
        ));
    }
    for (f, reason) in &outcome.baselined {
        entries.push(BaselineEntry::of(f, reason));
    }
    let text = baseline::render(&entries);
    let abs = if cfg.baseline_path.is_absolute() {
        cfg.baseline_path.clone()
    } else {
        cfg.root.join(&cfg.baseline_path)
    };
    if let Some(parent) = abs.parent() {
        let _ = fs::create_dir_all(parent);
    }
    fs::write(&abs, &text).map_err(|e| format!("write {}: {e}", abs.display()))?;
    Ok(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn module_paths_from_rel_paths() {
        assert_eq!(module_path("crates/ipg-sim/src/engine.rs"), vec!["engine"]);
        assert_eq!(
            module_path("crates/ipg-sim/src/lib.rs"),
            Vec::<String>::new()
        );
        assert_eq!(
            module_path("crates/ipg-cli/src/main.rs"),
            Vec::<String>::new()
        );
        assert_eq!(module_path("crates/x/src/foo/mod.rs"), vec!["foo"]);
        assert_eq!(module_path("crates/x/src/foo/bar.rs"), vec!["foo", "bar"]);
        assert_eq!(
            module_path("crates/x/tests/golden.rs"),
            Vec::<String>::new()
        );
    }
}
