//! Deterministic human and JSON-lines rendering of an [`Outcome`].
//!
//! Both formats are pure functions of the (already sorted) outcome: no
//! timestamps, no absolute paths, no environment — repeated runs emit
//! byte-identical reports, which `crates/ipg-analyze/tests/golden.rs`
//! asserts.

use crate::baseline::{fingerprint, quote};
use crate::driver::Outcome;
use crate::rules::Finding;

/// Human-readable report (one line per finding, then a summary).
pub fn human(o: &Outcome) -> String {
    let mut out = String::new();
    for f in &o.new {
        out.push_str(&format!(
            "{}:{}: {} [{}] {}\n    {}\n",
            f.path,
            f.line,
            f.rule,
            f.severity.as_str(),
            f.message,
            f.snippet
        ));
    }
    for e in &o.stale {
        out.push_str(&format!(
            "{}: stale baseline entry for {} — the finding is gone; delete the entry \
             (baseline may only shrink)\n    {}\n",
            e.path, e.rule, e.snippet
        ));
    }
    if o.legacy_baseline > 0 {
        out.push_str(&format!(
            "note: {} baseline entr{} in the deprecated pre-fingerprint format; \
             refresh with --write-baseline\n",
            o.legacy_baseline,
            if o.legacy_baseline == 1 {
                "y is"
            } else {
                "ies are"
            },
        ));
    }
    out.push_str(&format!(
        "ipg-analyze: {} new finding{}, {} baselined, {} suppressed, {} stale baseline \
         entr{}, {} files scanned\n",
        o.new.len(),
        if o.new.len() == 1 { "" } else { "s" },
        o.baselined.len(),
        o.suppressed,
        o.stale.len(),
        if o.stale.len() == 1 { "y" } else { "ies" },
        o.files,
    ));
    out
}

fn finding_json(f: &Finding, status: &str, reason: Option<&str>) -> String {
    let mut line = format!(
        "{{\"rule\":{},\"severity\":{},\"path\":{},\"line\":{},\"message\":{},\"snippet\":{},\"fingerprint\":{},\"status\":{}",
        quote(f.rule),
        quote(f.severity.as_str()),
        quote(&f.path),
        f.line,
        quote(&f.message),
        quote(&f.snippet),
        quote(&fingerprint(f.rule, &f.path, &f.snippet)),
        quote(status),
    );
    if let Some(r) = reason {
        line.push_str(&format!(",\"reason\":{}", quote(r)));
    }
    line.push('}');
    line
}

/// JSON-lines report: one object per new finding, then per baselined
/// finding, then per stale entry, then a summary object.
pub fn jsonl(o: &Outcome) -> String {
    let mut out = String::new();
    for f in &o.new {
        out.push_str(&finding_json(f, "new", None));
        out.push('\n');
    }
    for (f, reason) in &o.baselined {
        out.push_str(&finding_json(f, "baselined", Some(reason)));
        out.push('\n');
    }
    for e in &o.stale {
        out.push_str(&format!(
            "{{\"rule\":{},\"path\":{},\"snippet\":{},\"status\":\"stale-baseline\"}}\n",
            quote(&e.rule),
            quote(&e.path),
            quote(&e.snippet),
        ));
    }
    out.push_str(&format!(
        "{{\"summary\":{{\"new\":{},\"baselined\":{},\"suppressed\":{},\"stale\":{},\"legacy_baseline\":{},\"files\":{}}}}}\n",
        o.new.len(),
        o.baselined.len(),
        o.suppressed,
        o.stale.len(),
        o.legacy_baseline,
        o.files,
    ));
    out
}
