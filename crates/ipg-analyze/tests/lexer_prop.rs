//! Property battery for the hand-rolled lexer: adversarial string /
//! raw-string / comment soup must never panic, never leak literal or
//! comment contents as identifiers, and keep line numbers exact. The
//! canary word `LEAKME` only ever appears *inside* literals and
//! comments, so seeing it as an `Ident` is proof the lexer lost track
//! of where a literal ends.

use ipg_analyze::lexer::{lex, TokKind};
use proptest::prelude::*;

const CANARY: &str = "LEAKME";

/// Strategy: interior text for a literal, built from the characters
/// that break naive string scanning — quotes, hash runs, backslashes,
/// newlines, comment openers, and the canary word.
fn interior() -> impl Strategy<Value = String> {
    proptest::collection::vec(0u8..9, 0..14).prop_map(|picks| {
        picks
            .iter()
            .map(|p| match p {
                0 => "\"",
                1 => "#",
                2 => "\"##",
                3 => "\n",
                4 => CANARY,
                5 => "//",
                6 => "/*",
                7 => "'x",
                _ => "z9 ",
            })
            .collect()
    })
}

/// Hashes needed to safely delimit `interior` as a raw string: one more
/// than the longest `#`-run following any `"` inside it.
fn safe_hashes(interior: &str) -> usize {
    let bytes = interior.as_bytes();
    let mut worst = 0;
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'"' {
            let run = bytes[i + 1..].iter().take_while(|&&c| c == b'#').count();
            worst = worst.max(run + 1);
        }
    }
    worst
}

fn idents(src: &str) -> Vec<(String, u32)> {
    lex(src)
        .tokens
        .into_iter()
        .filter_map(|t| match t.kind {
            TokKind::Ident(s) => Some((s, t.line)),
            _ => None,
        })
        .collect()
}

proptest! {
    #[test]
    fn raw_strings_stay_opaque_at_any_hash_depth(
        inner in interior(),
        extra in 0usize..3,
        prefix in 0usize..3,
    ) {
        let hashes = "#".repeat(safe_hashes(&inner) + extra);
        let prefix = ["r", "br", "cr"][prefix];
        let src = format!("let a = {prefix}{hashes}\"{inner}\"{hashes};\nAFTER\n");
        let ids = idents(&src);
        prop_assert!(
            ids.iter().all(|(s, _)| s != CANARY),
            "literal contents leaked as idents in {src:?}: {ids:?}"
        );
        let after: Vec<_> = ids.iter().filter(|(s, _)| s == "AFTER").collect();
        prop_assert_eq!(after.len(), 1, "lost track after literal in {:?}", src);
        // the literal spans its embedded newlines; AFTER sits right below
        let expect = 2 + inner.matches('\n').count() as u32;
        prop_assert_eq!(after[0].1, expect, "wrong line in {:?}", src);
    }

    #[test]
    fn escaped_strings_stay_opaque(inner in interior(), byte in 0usize..2) {
        // embed the interior in a normal string, escaping what must be
        let escaped = inner.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n");
        let prefix = ["", "b"][byte];
        let src = format!("let a = {prefix}\"{escaped}\";\nAFTER\n");
        let ids = idents(&src);
        prop_assert!(ids.iter().all(|(s, _)| s != CANARY), "{src:?} leaked: {ids:?}");
        prop_assert!(
            ids.iter().any(|(s, l)| s == "AFTER" && *l == 2),
            "{src:?} lost AFTER: {ids:?}"
        );
    }

    #[test]
    fn comments_swallow_everything(inner in interior(), depth in 1usize..4) {
        // block comments nest in Rust; unbalanced closers inside the
        // interior would end the comment early, so strip them
        let inner = inner.replace("*/", "").replace("/*", "");
        let open = "/*".repeat(depth);
        let close = "*/".repeat(depth);
        let src = format!("{open} {inner} {close}\nAFTER // {CANARY} tail\n");
        let lexed = lex(&src);
        let ids: Vec<_> = lexed
            .tokens
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::Ident(s) => Some((s.clone(), t.line)),
                _ => None,
            })
            .collect();
        prop_assert!(ids.iter().all(|(s, _)| s != CANARY), "{src:?} leaked: {ids:?}");
        let expect = 2 + inner.matches('\n').count() as u32;
        prop_assert!(
            ids.iter().any(|(s, l)| s == "AFTER" && *l == expect),
            "{src:?} lost AFTER at {expect}: {ids:?}"
        );
        // the line comment's text must be preserved for suppression parsing
        prop_assert!(
            lexed.comments.iter().any(|c| c.text.contains(CANARY)),
            "{src:?} dropped comment text"
        );
    }

    #[test]
    fn soup_never_panics_and_lines_stay_ordered(
        picks in proptest::collection::vec(0u8..12, 0..40),
    ) {
        // raw soup, including unterminated openers — the lexer must
        // return (possibly swallowing the tail) without panicking
        let src: String = picks
            .iter()
            .map(|p| match p {
                0 => "\"",
                1 => "r#\"",
                2 => "br\"",
                3 => "/*",
                4 => "*/",
                5 => "//x",
                6 => "\n",
                7 => "'a",
                8 => "'b'",
                9 => "#",
                10 => "ident ",
                _ => "1.5e3 ",
            })
            .collect();
        let lexed = lex(&src);
        let max_line = src.lines().count().max(1) as u32;
        let mut prev = 1;
        for t in &lexed.tokens {
            prop_assert!(t.line >= prev, "line numbers regressed in {src:?}");
            prop_assert!(t.line <= max_line, "line {} > {max_line} in {src:?}", t.line);
            prev = t.line;
        }
    }

    #[test]
    fn backslash_newline_continuations_count_lines(n in 1usize..5) {
        let cont = "\\\n".repeat(n);
        let src = format!("let s = \"a{cont}b\";\nAFTER\n");
        let ids = idents(&src);
        let expect = 2 + n as u32;
        prop_assert!(
            ids.iter().any(|(s, l)| s == "AFTER" && *l == expect),
            "continuation lines miscounted in {src:?}: {ids:?}"
        );
    }
}
