//! Golden-file tests: each rule is demonstrated by a fixture mini-workspace
//! under `tests/fixtures/<name>/` holding a positive case, a suppressed
//! case, and a clean case. The committed `expected.jsonl` next to each
//! fixture is compared byte-for-byte, and the binary's exit codes and
//! cross-environment byte-stability are checked through subprocess runs.

use ipg_analyze::driver::{self, Config};
use ipg_analyze::report;
use std::path::PathBuf;
use std::process::Command;

const FIXTURES: &[&str] = &[
    "det001",
    "det002",
    "det003",
    "det004",
    "det005",
    "det006",
    "det007",
    "det008",
    "panic001",
    "hyg001",
    "det100",
    "layer001",
    "alloc001",
    "clean",
    "baselined",
    "stale",
    "fingerprint",
];

fn fixture_root(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn run_lib(name: &str) -> (String, bool) {
    let cfg = Config::new(fixture_root(name));
    let outcome = driver::analyze(&cfg).expect("fixture analysis must succeed");
    (report::jsonl(&outcome), outcome.ok())
}

#[test]
fn fixture_reports_match_goldens() {
    for name in FIXTURES {
        let (jsonl, _) = run_lib(name);
        let golden_path = fixture_root(name).join("expected.jsonl");
        let golden = std::fs::read_to_string(&golden_path)
            .unwrap_or_else(|e| panic!("read {}: {e}", golden_path.display()));
        assert_eq!(
            jsonl, golden,
            "{name}: jsonl report diverged from expected.jsonl"
        );
    }
}

#[test]
fn fixture_gate_verdicts() {
    for (name, expect_ok) in [
        ("det001", false),
        ("det002", false),
        ("det003", false),
        ("det004", false),
        ("det005", false),
        ("det006", false),
        ("det007", false),
        ("det008", false),
        ("panic001", false),
        ("hyg001", false),
        ("det100", false),
        ("layer001", false),
        ("alloc001", false),
        ("clean", true),
        ("baselined", true),
        ("stale", false),
        ("fingerprint", true),
    ] {
        let (_, ok) = run_lib(name);
        assert_eq!(ok, expect_ok, "{name}: unexpected gate verdict");
    }
}

#[test]
fn reports_are_byte_identical_across_runs() {
    for name in FIXTURES {
        let (a, _) = run_lib(name);
        let (b, _) = run_lib(name);
        assert_eq!(a, b, "{name}: repeated runs must emit identical bytes");
    }
}

fn run_bin(args: &[&str], envs: &[(&str, &str)]) -> (i32, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_ipg-analyze"));
    cmd.args(args);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("spawn ipg-analyze");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

#[test]
fn exit_codes_gate_the_build() {
    let root = |n: &str| fixture_root(n).display().to_string();
    let (code, _) = run_bin(&["--root", &root("clean"), "--format", "json"], &[]);
    assert_eq!(code, 0, "clean fixture must exit 0");
    let (code, _) = run_bin(&["--root", &root("baselined"), "--format", "json"], &[]);
    assert_eq!(code, 0, "fully-baselined fixture must exit 0");
    let (code, _) = run_bin(&["--root", &root("det001"), "--format", "json"], &[]);
    assert_eq!(code, 2, "new findings must exit 2");
    let (code, _) = run_bin(&["--root", &root("stale"), "--format", "json"], &[]);
    assert_eq!(code, 2, "stale baseline entries must exit 2");
    let (code, _) = run_bin(&["--rules", "NOSUCH"], &[]);
    assert_eq!(code, 1, "unknown rule filter is a usage error");
}

#[test]
fn rules_filter_scopes_the_gate() {
    // bench.sh uses --rules DET001,…,DET005: PANIC001-only findings
    // must not block it.
    let root = fixture_root("panic001").display().to_string();
    let (code, out) = run_bin(
        &[
            "--root",
            &root,
            "--format",
            "json",
            "--rules",
            "DET001,DET002,DET003",
        ],
        &[],
    );
    assert_eq!(
        code, 0,
        "DET-filtered run must pass on PANIC-only fixture:\n{out}"
    );
    let (code, _) = run_bin(
        &["--root", &root, "--format", "json", "--rules", "PANIC001"],
        &[],
    );
    assert_eq!(code, 2, "PANIC001 filter must still catch its findings");
}

#[test]
fn det100_fixture_reports_the_full_call_chain() {
    // The chain crosses a crate boundary: the engine file contains no
    // clock ident at all, yet the finding names every hop to the sink.
    let (jsonl, ok) = run_lib("det100");
    assert!(!ok, "det100 fixture must fail the gate");
    assert!(
        jsonl.contains("reachable from cycle entry: Simulator::run -> helper -> stamp"),
        "DET100 must print the full call chain:\n{jsonl}"
    );
}

#[test]
fn legacy_baseline_entries_still_match_but_are_noted() {
    // `baselined` carries pre-fingerprint entries: they must keep
    // excusing their findings (compat reader) while the human report
    // points at the migration path.
    let root = fixture_root("baselined").display().to_string();
    let (code, out) = run_bin(&["--root", &root, "--format", "human"], &[]);
    assert_eq!(code, 0, "legacy-format entries must still match:\n{out}");
    assert!(
        out.contains("deprecated pre-fingerprint format"),
        "human report must carry the deprecation note:\n{out}"
    );
}

#[test]
fn output_is_byte_identical_across_thread_settings() {
    for name in ["det001", "det100", "panic001"] {
        let root = fixture_root(name).display().to_string();
        let args = ["--root", root.as_str(), "--format", "json"];
        let (c1, out1) = run_bin(&args, &[("IPG_THREADS", "1")]);
        let (c4, out4) = run_bin(&args, &[("IPG_THREADS", "4")]);
        assert_eq!(c1, c4, "{name}: exit code must not depend on IPG_THREADS");
        assert_eq!(out1, out4, "{name}: output must not depend on IPG_THREADS");
    }
}

#[test]
fn real_workspace_passes_the_gate() {
    // The repo's own source must be clean against its committed baseline —
    // this is the same check `scripts/check.sh` runs.
    let root = driver::find_root(&PathBuf::from(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above the analyzer crate");
    let cfg = Config::new(root);
    let outcome = driver::analyze(&cfg).expect("workspace analysis must succeed");
    let report = report::human(&outcome);
    assert!(
        outcome.ok(),
        "workspace has unexcused findings or stale baseline entries:\n{report}"
    );
    assert!(
        outcome.files > 50,
        "workspace walk looks truncated: {report}"
    );
}

#[test]
fn real_workspace_output_is_byte_identical_across_thread_settings() {
    let root = driver::find_root(&PathBuf::from(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above the analyzer crate");
    let root = root.display().to_string();
    let args = ["--root", root.as_str(), "--format", "json"];
    let (c1, out1) = run_bin(&args, &[("IPG_THREADS", "1")]);
    let (c2, out2) = run_bin(&args, &[("IPG_THREADS", "2")]);
    let (c4, out4) = run_bin(&args, &[("IPG_THREADS", "4")]);
    assert_eq!((c1, &out1), (c2, &out2), "IPG_THREADS=1 vs 2 diverged");
    assert_eq!((c1, &out1), (c4, &out4), "IPG_THREADS=1 vs 4 diverged");
}
