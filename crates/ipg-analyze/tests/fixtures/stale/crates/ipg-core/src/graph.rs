//! Stale fixture: the code was fixed but the baseline entry lingers.

pub fn fixed(v: &[u32]) -> usize {
    v.len()
}
