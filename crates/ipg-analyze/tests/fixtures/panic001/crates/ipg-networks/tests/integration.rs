//! Integration tests are exempt from PANIC001.
#[test]
fn integration_tests_may_unwrap() {
    assert_eq!(Some(1).unwrap(), 1);
}
