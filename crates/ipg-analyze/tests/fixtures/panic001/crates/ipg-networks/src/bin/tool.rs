//! Bin targets are exempt from PANIC001.
fn main() {
    let v: Vec<u32> = std::env::args().filter_map(|a| a.parse().ok()).collect();
    println!("{}", v.first().copied().unwrap());
}
