//! PANIC001 fixture: panics in library code vs tests, bins, and benches.

pub fn positive(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn shouting(x: u32) -> u32 {
    if x > 7 {
        panic!("x out of range");
    }
    x
}

pub fn justified(v: &[u32]) -> u32 {
    // ipg-analyze: allow(PANIC001) reason="v is non-empty: every caller checks len() first"
    v.first().copied().expect("non-empty")
}

pub fn clean(x: Option<u32>) -> u32 {
    x.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        assert_eq!(super::positive(Some(3)), 3);
    }
}
