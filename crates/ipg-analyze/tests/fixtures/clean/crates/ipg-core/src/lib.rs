//! Clean fixture: nothing to report.

pub fn double(x: u32) -> u32 {
    x * 2
}
