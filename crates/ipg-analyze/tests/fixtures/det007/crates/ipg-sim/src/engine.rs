//! DET007 fixture: raw bitset mutation inside a sparse cycle kernel.
use crate::worklist::{FixedBitSet, Worklist};

pub fn flip_by_hand(bits: &mut FixedBitSet, li: u32) {
    bits.set_bit(li);
    bits.clear_bit(li + 1);
}

pub fn suppressed_probe(capacity: usize) -> bool {
    // ipg-analyze: allow(DET007) reason="fixture: demonstrating a justified one-off inspection"
    FixedBitSet::with_capacity(capacity).set_bit(0)
}

pub fn sanctioned(active: &mut Worklist, li: u32) -> bool {
    active.insert(li);
    active.remove(li + 1)
}

#[cfg(test)]
mod tests {
    use crate::worklist::FixedBitSet;

    pub fn exempt(bits: &mut FixedBitSet) {
        bits.set_bit(7);
    }
}
