//! ALLOC001 fixture: a per-cycle body allocating one hop down, a
//! suppressed grow-once buffer, and setup allocation that is exempt.

pub struct Shard {
    scratch: Vec<u32>,
}

impl Shard {
    pub fn phase_a(&mut self) {
        self.drain();
    }

    fn drain(&mut self) {
        let spill: Vec<u32> = Vec::new();
        self.scratch.extend(spill);
    }

    pub fn phase_b(&mut self) {
        // ipg-analyze: allow(ALLOC001) reason="fixture: grow-once scratch buffer, reused every cycle after"
        self.scratch = Vec::new();
    }
}

pub fn run_setup() -> Vec<u32> {
    Vec::new()
}
