//! DET100 fixture: the cycle loop reaches a wall clock two hops away,
//! in another crate — no clock ident appears in this file at all.
use ipg_routes::helper;

pub struct Simulator;

impl Simulator {
    pub fn run(&mut self) -> u64 {
        helper()
    }
}
