//! Reached from the engine via `helper` — the clock sits one more hop
//! down, so DET100 must print the whole chain.

pub fn helper() -> u64 {
    stamp() + shimmed()
}

fn stamp() -> u64 {
    match std::time::SystemTime::now().elapsed() {
        Ok(d) => d.as_secs(),
        Err(_) => 0,
    }
}

fn shimmed() -> u64 {
    // ipg-analyze: allow(DET003) reason="fixture: justified clock read" ipg-analyze: allow(DET100) reason="fixture: demonstrating a justified reachable clock"
    std::time::Instant::now().elapsed().as_secs()
}
