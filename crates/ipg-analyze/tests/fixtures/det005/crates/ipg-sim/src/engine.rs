//! DET005 fixture: raw trace-event plumbing inside a sharded cycle loop.
use ipg_obs::trace::{EventRing, TraceEvent};
use ipg_obs::ShardTracer;

pub fn record_by_hand(ring: &mut EventRing, cycle: u32) {
    ring.push(TraceEvent {
        cycle,
        ..TraceEvent::default()
    });
}

pub fn suppressed_probe(cycle: u32) -> u64 {
    // ipg-analyze: allow(DET005) reason="fixture: demonstrating a justified one-off event"
    let ev = TraceEvent {
        cycle,
        ..Default::default()
    };
    ev.value
}

pub fn sanctioned(tracer: &mut ShardTracer, cycle: u64) {
    if tracer.sampled(cycle) {
        tracer.merge(cycle as u32, 1);
    }
}
