//! DET003 fixture: wall-clock reads outside the observability layer.
use std::time::Instant;

pub fn timed(mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_secs_f64()
}

pub fn suppressed_clock() -> u64 {
    // ipg-analyze: allow(DET003) reason="fixture: demonstrating a justified clock read"
    match std::time::SystemTime::now().elapsed() {
        Ok(d) => d.as_secs(),
        Err(_) => 0,
    }
}
