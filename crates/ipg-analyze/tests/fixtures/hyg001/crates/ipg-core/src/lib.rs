//! HYG001 fixture: malformed suppressions (HYG001 is itself unsuppressible).

// ipg-analyze: allow(DET001)
pub fn bare_allow() {}

// ipg-analyze: allow(NOPE001) reason="no such rule"
pub fn unknown_rule() {}

// ipg-analyze: allow(HYG001) reason="cannot excuse the excuser"
pub fn self_suppression() {}

// ipg-analyze: allow(DET003) reason="fixture: well-formed unused suppressions are fine"
pub fn well_formed() {}
