//! DET004 fixture: ad-hoc RNG construction inside a sharded cycle loop.
use rand::rngs::SmallRng;
use rand::SeedableRng;

pub fn inject(seed: u64) -> bool {
    let mut rng = SmallRng::seed_from_u64(seed);
    rng.gen::<f64>() < 0.5
}

pub fn suppressed_stream(seed: u64) -> u64 {
    // ipg-analyze: allow(DET004) reason="fixture: demonstrating a justified one-off stream"
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xdead_beef);
    rng.next_u64()
}
