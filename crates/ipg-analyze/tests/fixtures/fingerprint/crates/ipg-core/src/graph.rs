//! Fingerprint fixture. The baseline was written before this file was
//! reindented; raw-snippet equality would fail on the extra spaces, but
//! whitespace-normalized fingerprints still match.

use std::collections::HashMap;

pub fn lookup() {
    let mut m  =  HashMap::new();
    m.insert(1u32, 2u32);
}
