//! Baselined fixture: grandfathered findings excused by the committed baseline.
use std::collections::HashMap;

pub fn legacy(v: &[u32]) -> usize {
    let mut m = HashMap::new();
    for &x in v {
        m.insert(x, ());
    }
    m.len()
}
