//! The sanctioned codec home: the same primitives are fine here.
pub fn seal_len(v: u32) -> [u8; 4] {
    v.to_le_bytes()
}
