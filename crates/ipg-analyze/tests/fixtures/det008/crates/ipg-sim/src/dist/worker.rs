//! DET008 fixture: raw byte plumbing in a dist protocol file.
use std::os::unix::net::UnixStream;

pub fn ship_by_hand(sock: &mut UnixStream, cycle: u32) {
    let _ = sock.write_all(&cycle.to_le_bytes());
}

pub fn suppressed_probe(v: u32) -> [u8; 4] {
    // ipg-analyze: allow(DET008) reason="fixture: demonstrating a justified one-off encoding"
    v.to_be_bytes()
}

#[cfg(test)]
mod tests {
    pub fn exempt(v: u32) -> [u8; 4] {
        v.to_le_bytes()
    }
}
