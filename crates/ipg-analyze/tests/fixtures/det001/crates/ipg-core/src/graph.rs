//! DET001 fixture (positive): default-hasher map in a hot module.
use std::collections::HashMap;

pub fn counts(v: &[u32]) -> usize {
    let mut m = HashMap::new();
    for &x in v {
        *m.entry(x).or_insert(0u32) += 1;
    }
    m.len()
}
