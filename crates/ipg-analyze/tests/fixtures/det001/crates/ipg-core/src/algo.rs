//! DET001 fixture (clean): non-hot modules may use default hashers.
use std::collections::HashMap;

pub fn histogram(v: &[u32]) -> HashMap<u32, u32> {
    let mut m = HashMap::new();
    for &x in v {
        *m.entry(x).or_insert(0) += 1;
    }
    m
}
