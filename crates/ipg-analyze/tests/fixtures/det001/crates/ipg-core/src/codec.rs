//! DET001 fixture (suppressed): justified uses in a hot module.
// ipg-analyze: allow(DET001) reason="iteration order never observed; keys drained sorted"
use std::collections::HashSet;

pub fn distinct(v: &[u32]) -> usize {
    // ipg-analyze: allow(DET001) reason="bounded set; order-free membership only"
    let s: HashSet<u32> = v.iter().copied().collect();
    s.len()
}
