//! DET006 fixture: raw fault-event plumbing inside a sharded cycle loop.
use crate::fault::{FaultEvent, FaultKind, FaultPlan, ShardFaults};

pub fn kill_by_hand(events: &[FaultEvent], cycle: u32) -> usize {
    events
        .iter()
        .filter(|ev| ev.cycle <= cycle && matches!(ev.kind, FaultKind::Node(_)))
        .count()
}

pub fn suppressed_probe(cycle: u32) -> u32 {
    // ipg-analyze: allow(DET006) reason="fixture: demonstrating a justified one-off inspection"
    let ev = FaultEvent::scripted_node(cycle, 0);
    ev.cycle
}

pub fn sanctioned(plan: &FaultPlan, faults: &mut ShardFaults, cycle: u32) -> usize {
    let mut applied = plan.events().len();
    while faults.next_due(cycle).is_some() {
        applied += 1;
    }
    applied
}
