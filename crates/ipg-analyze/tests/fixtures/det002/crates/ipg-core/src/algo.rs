//! DET002 fixture: parallel reductions with and without audit comments.
use rayon::prelude::*;

pub fn unaudited(v: &[u32]) -> u32 {
    v.par_iter().copied().reduce(|| 0, |a, b| a.max(b))
}

// Parallel-reduction audit: u32 max — associative and commutative,
// exact for any chunking.
pub fn audited(v: &[u32]) -> u32 {
    v.par_iter().copied().reduce(|| 0, |a, b| a.max(b))
}

pub fn suppressed(v: &[u32]) -> u32 {
    // ipg-analyze: allow(DET002) reason="u32 max is order-free; audited at the call site"
    v.par_iter().copied().reduce(|| 0, |a, b| a.max(b))
}

pub fn sequential(v: &[u32]) -> u32 {
    v.iter().fold(0, |a, b| a + b)
}
