//! The CLI may do I/O: identical handle types, zero findings here.
fn main() {
    let _ = std::fs::File::create("out.json");
}
