//! LAYER001 fixture: the kernel crate reaching for fs and the obs layer.
use ipg_obs::Obs;

pub fn snapshot() {
    let _ = std::fs::write("graph.bin", [0u8]);
}

pub fn suppressed_probe() {
    // ipg-analyze: allow(LAYER001) reason="fixture: demonstrating a grandfathered obs reference"
    let _ = ipg_obs::VERSION;
}
