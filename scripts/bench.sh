#!/usr/bin/env bash
# Regenerate results/BENCH_core.json reproducibly: fixed instance list
# (see benches/addressing.rs), pinned worker count, medians over 20
# samples. Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

# Pin the pool so interned-build parallelism doesn't vary run to run.
export IPG_THREADS="${IPG_THREADS:-4}"

# Refuse to benchmark code with open determinism, layering, or cycle-loop
# allocation findings: numbers from a nondeterministic build are not
# comparable run to run, and steady-state allocation skews hot-path medians.
echo "== ipg-analyze (DET/LAYER/ALLOC rules) =="
if ! cargo run -q -p ipg-analyze --     --rules DET001,DET002,DET003,DET004,DET005,DET006,DET007,DET008,DET100,LAYER001,ALLOC001     --format human; then
    echo "bench.sh: refusing to benchmark with open DET/LAYER/ALLOC findings" >&2
    exit 1
fi

jsonl="$(mktemp /tmp/addressing.XXXXXX.jsonl)"
trap 'rm -f "$jsonl"' EXIT

echo "== cargo bench --bench addressing (IPG_THREADS=$IPG_THREADS) =="
CRITERION_JSON="$jsonl" cargo bench -p ipg-bench --bench addressing

echo "== bench_report -> results/BENCH_core.json =="
cargo run --release -p ipg-bench --bin bench_report -- "$jsonl"

echo "== sim_bench -> results/BENCH_sim.json =="
cargo run --release -p ipg-bench --bin sim_bench

echo "== regenerate results/*.manifest.jsonl =="
for bin in fault_sweep fig2_dd_cost link_utilization sim_latency thm_checks wormhole_vcs; do
    echo "-- $bin"
    cargo run -q --release -p ipg-bench --bin "$bin" > /dev/null
done
