#!/usr/bin/env bash
# Pre-PR gate: formatting, lints, build, tests. Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== ipg-analyze =="
cargo run -q -p ipg-analyze -- --format human

echo "== cargo clippy --workspace -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --release

echo "== cargo test (pool auto-sized) =="
cargo test -q

echo "== cargo test (IPG_THREADS=1, sequential pool) =="
IPG_THREADS=1 cargo test -q

echo "== property tests, 256 cases =="
PROPTEST_CASES=256 cargo test -q --release --test proptests

echo "== benches compile =="
cargo bench --workspace --no-run

echo "== codec property pass =="
PROPTEST_CASES=64 cargo test -q --release --test proptests codec

echo "all checks passed"
