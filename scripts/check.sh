#!/usr/bin/env bash
# Pre-PR gate: formatting, lints, build, tests. Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

# Stage bookkeeping: `stage <name>` closes the previous stage and opens
# the next; the per-stage wall times print in a summary at the end.
stage_names=()
stage_secs=()
stage_cur=""
stage_t0=0
stage() {
    local now; now=$(date +%s)
    if [ -n "$stage_cur" ]; then
        stage_names+=("$stage_cur")
        stage_secs+=($((now - stage_t0)))
    fi
    stage_cur="$1"
    stage_t0=$now
    echo "== $1 =="
}

stage "cargo fmt --check"
cargo fmt --all --check

stage "ipg-analyze (workspace gate)"
cargo run -q -p ipg-analyze -- --format human

stage "ipg-analyze (self-lint, no baseline)"
# The analyzer must hold itself to its own rules with nothing excused.
cargo run -q -p ipg-analyze -- --member ipg-analyze --no-baseline --format human

stage "cargo clippy --workspace -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

stage "cargo build --release"
cargo build --release

stage "cargo test (pool auto-sized)"
cargo test -q

stage "cargo test (IPG_THREADS=1, sequential pool)"
IPG_THREADS=1 cargo test -q

stage "property tests, 256 cases"
PROPTEST_CASES=256 cargo test -q --release --test proptests

stage "benches compile"
cargo bench --workspace --no-run

stage "codec property pass"
PROPTEST_CASES=64 cargo test -q --release --test proptests codec

stage "sim determinism (IPG_THREADS=1/2/4 byte-compare)"
# The deterministic record families (stdout; manifest window/metrics
# records) must not depend on the worker count. Spans/rates/meta carry
# wall-clock data, so only the deterministic families are compared.
simdir="$(mktemp -d /tmp/ipg-sim-det.XXXXXX)"
trap 'rm -rf "$simdir"' EXIT
for t in 1 2 4; do
    mkdir -p "$simdir/t$t"
    (cd "$simdir/t$t" && IPG_THREADS=$t "$OLDPWD/target/release/ipg" \
        simulate ring-cn:l=3,nucleus=Q2 0.03 \
        --obs run.manifest.jsonl --obs-interval 500 \
        --trace run.trace.jsonl --trace-interval 128 > stdout.txt)
    grep -E '^\{"record":"(window|metrics)"' "$simdir/t$t/run.manifest.jsonl" \
        | sort > "$simdir/t$t/records.txt"
done
for t in 2 4; do
    cmp "$simdir/t1/stdout.txt" "$simdir/t$t/stdout.txt" \
        || { echo "check.sh: simulate stdout differs for IPG_THREADS=$t" >&2; exit 1; }
    cmp "$simdir/t1/records.txt" "$simdir/t$t/records.txt" \
        || { echo "check.sh: manifest records differ for IPG_THREADS=$t" >&2; exit 1; }
    # The flight recorder records only virtual time and counts, so the
    # whole trace file — not just a filtered family — must byte-compare.
    cmp "$simdir/t1/run.trace.jsonl" "$simdir/t$t/run.trace.jsonl" \
        || { echo "check.sh: trace file differs for IPG_THREADS=$t" >&2; exit 1; }
done
echo "   byte-identical for IPG_THREADS=1/2/4 (stdout, manifest records, trace)"

stage "fault-mode determinism (IPG_THREADS=1/2/4 byte-compare)"
# Same byte-identity with a fault campaign active: scripted kills and
# rate-drawn kills (expanded at compile time from node/edge streams)
# must not make any deterministic output depend on the worker count.
for spec in "script:link@600:0-1+node@1200:5" "rate:links=0.05,nodes=0.01,at=800"; do
    tag="$(echo "$spec" | tr -c 'a-z0-9' '_')"
    for t in 1 2 4; do
        mkdir -p "$simdir/f$tag$t"
        (cd "$simdir/f$tag$t" && IPG_THREADS=$t "$OLDPWD/target/release/ipg" \
            simulate ring-cn:l=3,nucleus=Q2 0.03 --faults "$spec" \
            --obs run.manifest.jsonl --obs-interval 500 \
            --trace run.trace.jsonl --trace-interval 128 > stdout.txt)
        grep -E '^\{"record":"(window|metrics)"' "$simdir/f$tag$t/run.manifest.jsonl" \
            | sort > "$simdir/f$tag$t/records.txt"
    done
    for t in 2 4; do
        cmp "$simdir/f${tag}1/stdout.txt" "$simdir/f$tag$t/stdout.txt" \
            || { echo "check.sh: faulted stdout ($spec) differs for IPG_THREADS=$t" >&2; exit 1; }
        cmp "$simdir/f${tag}1/records.txt" "$simdir/f$tag$t/records.txt" \
            || { echo "check.sh: faulted manifest records ($spec) differ for IPG_THREADS=$t" >&2; exit 1; }
        cmp "$simdir/f${tag}1/run.trace.jsonl" "$simdir/f$tag$t/run.trace.jsonl" \
            || { echo "check.sh: faulted trace file ($spec) differs for IPG_THREADS=$t" >&2; exit 1; }
    done
done
echo "   byte-identical for IPG_THREADS=1/2/4 (scripted and rate-based faults)"

stage "sparse-vs-dense determinism (IPG_DENSE_ENGINE byte-compare)"
# The sparse worklist kernel (default) must be byte-identical to the
# dense oracle (IPG_DENSE_ENGINE=1) — stdout, manifest records, AND the
# full trace file — with a fault campaign active, at every worker count.
# This is the DESIGN.md §13 contract exercised end to end.
for t in 1 2 4; do
    for eng in sparse dense; do
        denv=0
        [ "$eng" = dense ] && denv=1
        mkdir -p "$simdir/e$eng$t"
        (cd "$simdir/e$eng$t" && IPG_THREADS=$t IPG_DENSE_ENGINE=$denv \
            "$OLDPWD/target/release/ipg" \
            simulate ring-cn:l=3,nucleus=Q2 0.03 \
            --faults "script:link@600:0-1+node@1200:5" \
            --obs run.manifest.jsonl --obs-interval 500 \
            --trace run.trace.jsonl --trace-interval 128 > stdout.txt)
        grep -E '^\{"record":"(window|metrics)"' "$simdir/e$eng$t/run.manifest.jsonl" \
            | sort > "$simdir/e$eng$t/records.txt"
    done
    cmp "$simdir/esparse$t/stdout.txt" "$simdir/edense$t/stdout.txt" \
        || { echo "check.sh: sparse stdout differs from dense oracle at IPG_THREADS=$t" >&2; exit 1; }
    cmp "$simdir/esparse$t/records.txt" "$simdir/edense$t/records.txt" \
        || { echo "check.sh: sparse manifest records differ from dense oracle at IPG_THREADS=$t" >&2; exit 1; }
    cmp "$simdir/esparse$t/run.trace.jsonl" "$simdir/edense$t/run.trace.jsonl" \
        || { echo "check.sh: sparse trace differs from dense oracle at IPG_THREADS=$t" >&2; exit 1; }
done
echo "   sparse kernel byte-identical to the dense oracle (faults + tracing, IPG_THREADS=1/2/4)"

stage "dist determinism (--workers 1/2/4 vs in-process byte-compare)"
# The multi-process engine must be byte-identical to the in-process
# engine at every worker count: stdout, the deterministic manifest
# families, and the full trace file. 512 nodes — four engine shards —
# so 2- and 4-worker runs genuinely split the shard range; a faulted
# config exercises the cross-process fault/detour plumbing too.
for spec in "" "script:link@600:0-1+node@1200:5"; do
    ftag=plain
    fflags=""
    if [ -n "$spec" ]; then
        ftag=faulted
        fflags="--faults $spec"
    fi
    for w in inproc 1 2 4; do
        wflags=""
        [ "$w" != inproc ] && wflags="--workers $w"
        mkdir -p "$simdir/d$ftag$w"
        (cd "$simdir/d$ftag$w" && "$OLDPWD/target/release/ipg" \
            simulate ring-cn:l=3,nucleus=Q3 0.02 $fflags \
            --obs run.manifest.jsonl --obs-interval 500 \
            --trace run.trace.jsonl --trace-interval 128 $wflags > stdout.txt)
        grep -E '^\{"record":"(window|metrics)"' "$simdir/d$ftag$w/run.manifest.jsonl" \
            | sort > "$simdir/d$ftag$w/records.txt"
    done
    for w in 1 2 4; do
        cmp "$simdir/d${ftag}inproc/stdout.txt" "$simdir/d$ftag$w/stdout.txt" \
            || { echo "check.sh: dist stdout ($ftag) differs for --workers $w" >&2; exit 1; }
        cmp "$simdir/d${ftag}inproc/records.txt" "$simdir/d$ftag$w/records.txt" \
            || { echo "check.sh: dist manifest records ($ftag) differ for --workers $w" >&2; exit 1; }
        cmp "$simdir/d${ftag}inproc/run.trace.jsonl" "$simdir/d$ftag$w/run.trace.jsonl" \
            || { echo "check.sh: dist trace file ($ftag) differs for --workers $w" >&2; exit 1; }
    done
done
echo "   byte-identical for --workers 1/2/4 vs in-process (plain and faulted)"

stage "trace on/off determinism (manifest byte-compare)"
# Attaching the flight recorder must not perturb the simulation: the
# deterministic manifest families and stdout (minus the trace: line)
# match a traced run against an untraced one.
for mode in off on; do
    mkdir -p "$simdir/$mode"
    tflags=""
    [ "$mode" = on ] && tflags="--trace run.trace.jsonl"
    (cd "$simdir/$mode" && IPG_THREADS=2 "$OLDPWD/target/release/ipg" \
        simulate ring-cn:l=3,nucleus=Q2 0.03 \
        --obs run.manifest.jsonl --obs-interval 500 $tflags \
        | grep -v '^trace:' > stdout.txt)
    grep -E '^\{"record":"(window|metrics)"' "$simdir/$mode/run.manifest.jsonl" \
        | sort > "$simdir/$mode/records.txt"
done
cmp "$simdir/off/stdout.txt" "$simdir/on/stdout.txt" \
    || { echo "check.sh: --trace changed simulate stdout" >&2; exit 1; }
cmp "$simdir/off/records.txt" "$simdir/on/records.txt" \
    || { echo "check.sh: --trace changed manifest records" >&2; exit 1; }
echo "   tracing is invisible to the deterministic families"

now=$(date +%s)
stage_names+=("$stage_cur")
stage_secs+=($((now - stage_t0)))
echo "all checks passed"
echo "-- stage wall times --"
for i in "${!stage_names[@]}"; do
    printf '%5ss  %s\n' "${stage_secs[$i]}" "${stage_names[$i]}"
done
