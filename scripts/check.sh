#!/usr/bin/env bash
# Pre-PR gate: formatting, lints, build, tests. Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy --workspace -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --release

echo "== cargo test =="
cargo test -q

echo "all checks passed"
