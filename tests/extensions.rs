//! Integration tests for the extension subsystems: connectivity/fault
//! tolerance, collectives, layout, ranking, and algorithm emulation —
//! exercised across crates on the paper's networks.

use ipgraph::prelude::*;

/// Super-IP networks inherit connectivity from their pieces: the §3
/// families are maximally fault tolerant (κ = δ) on these instances,
/// like the hypercube and star baselines.
#[test]
fn connectivity_of_families() {
    use connectivity::{edge_connectivity, vertex_connectivity};
    // baselines with known κ
    assert_eq!(vertex_connectivity(&classic::hypercube(4)), 4);
    assert_eq!(vertex_connectivity(&classic::star(4)), 3);
    assert_eq!(vertex_connectivity(&classic::petersen()), 3);

    for (g, name) in [
        (hier::hcn(2, false), "HSN(2,Q2)"),
        (
            hier::ring_cn(3, classic::hypercube(2), "Q2").build(),
            "ring-CN(3,Q2)",
        ),
        (
            hier::complete_cn(3, classic::hypercube(2), "Q2").build(),
            "CN(3,Q2)",
        ),
        (hier::cyclic_petersen(2).build(), "CPN(2)"),
    ] {
        let kappa = vertex_connectivity(&g);
        let lambda = edge_connectivity(&g);
        let delta = g.min_degree() as u32;
        assert_eq!(kappa, delta, "{name}: κ = δ (maximal fault tolerance)");
        assert!(kappa <= lambda && lambda <= delta, "{name}: Whitney chain");
    }
}

/// Hierarchical broadcast: off-module sends hit #modules − 1 across
/// families; the naive policy never beats it.
#[test]
fn broadcast_off_module_bound_across_families() {
    for tn in [
        hier::hsn(2, classic::hypercube(3), "Q3"),
        hier::ring_cn(3, classic::hypercube(2), "Q2"),
        hier::superflip(3, classic::hypercube(2), "Q2"),
        hier::cyclic_petersen(2),
    ] {
        let g = tn.build();
        let p = partition::nucleus_partition(&tn);
        for root in [0u32, 1, g.node_count() as u32 / 2] {
            let h = collective::greedy_broadcast(&g, &p, root, true);
            let naive = collective::greedy_broadcast(&g, &p, root, false);
            assert_eq!(
                h.off_module_sends,
                p.count as u64 - 1,
                "{} root {root}",
                tn.name
            );
            assert!(h.off_module_sends <= naive.off_module_sends);
            assert_eq!(
                h.on_module_sends + h.off_module_sends,
                g.node_count() as u64 - 1
            );
        }
    }
}

/// Layout + bisection consistency across crates: Thompson lower bound
/// never exceeds the achieved (scaled) layout area; recursive layouts
/// win on super-IP networks.
#[test]
fn layout_pipeline() {
    let tn = hier::hsn(2, classic::hypercube(3), "Q3");
    let g = tn.build();
    let b = bisection::bisection_width_kl(&g, 16, 1);
    let rec = grid::recursive_layout(&tn);
    let naive = grid::row_major_layout(g.node_count());
    assert!(rec.total_wirelength(&g) < naive.total_wirelength(&g));
    assert!(grid::thompson_area_lower_bound(b as u64) <= (rec.area() as u64).pow(2));
    // bisection of the 64-node HSN is below the 64-node hypercube's 32
    assert!(b < 32);
}

/// Ranking indexes super-IP labels: every generated label of a symmetric
/// HSN has a distinct multiset rank, bounded by the arrangement count.
#[test]
fn ranking_indexes_generated_labels() {
    let spec = SuperIpSpec::hsn(2, NucleusSpec::hypercube(2)).symmetric();
    let ip = spec.to_ip_spec().generate().unwrap();
    let mut ranks: Vec<u64> = (0..ip.node_count() as u32)
        .map(|v| rank::perm_rank(ip.label(v).symbols()))
        .collect();
    ranks.sort_unstable();
    let before = ranks.len();
    ranks.dedup();
    assert_eq!(ranks.len(), before, "ranks must be distinct");
    // 8 distinct symbols → < 8!
    assert!(*ranks.last().unwrap() < 40320);
}

/// Emulation: the same bitonic schedule sorts on every host, and the
/// per-step slowdown ordering matches the embedding quality.
#[test]
fn emulation_across_hosts() {
    let n = 64usize;
    let map: Vec<u32> = (0..n as u32).collect();
    let mut slowdowns = Vec::new();
    for (name, host) in [
        ("Q6", classic::hypercube(6)),
        (
            "HSN(2,Q3)",
            hier::hsn(2, classic::hypercube(3), "Q3").build(),
        ),
        ("C64", classic::ring(64)),
    ] {
        let emu = HostEmulator::new(&host, &map);
        let mut keys: Vec<u64> = (0..64u64).map(|i| (i * 37) % 64).collect();
        let r = emu.bitonic_sort(&mut keys);
        assert!(keys.windows(2).all(|w| w[0] <= w[1]), "{name}");
        slowdowns.push((name, r.slowdown()));
    }
    assert!(slowdowns[0].1 <= slowdowns[1].1);
    assert!(slowdowns[1].1 < slowdowns[2].1, "{slowdowns:?}");
}

/// The directed cyclic-shift network obeys Corollary 4.2 and routes with
/// the same machinery.
#[test]
fn directed_cn_end_to_end() {
    let spec = SuperIpSpec::directed_ring_cn(3, NucleusSpec::hypercube(1));
    let ip = spec.to_ip_spec().generate().unwrap();
    let g = ip.to_directed_csr();
    assert!(algo::is_strongly_connected(&g));
    assert_eq!(algo::diameter(&g), routing::corollary_4_2_diameter(3, 1));
    let router = routing::SuperRouter::new(&spec).unwrap();
    for (u, v) in [(0u32, 5u32), (3, 7), (7, 0)] {
        let path = router.route(ip.label(u), ip.label(v)).unwrap();
        for w in path.windows(2) {
            let a = ip.node_of(&w[0]).unwrap();
            let b = ip.node_of(&w[1]).unwrap();
            assert!(ip.arcs_of(a).contains(&b));
        }
    }
}

/// Traffic patterns and switching modes interoperate with module-aware
/// simulation.
#[test]
fn sim_modes_matrix() {
    let g = classic::hypercube(6);
    let module: Vec<u32> = (0..64u32).map(|u| u >> 2).collect();
    for traffic in [
        Traffic::Uniform,
        Traffic::BitComplement,
        Traffic::Transpose,
        Traffic::Hotspot {
            fraction: 0.2,
            target: 5,
        },
    ] {
        for switching in [Switching::StoreForward, Switching::CutThrough] {
            let cfg = SimConfig {
                injection_rate: 0.01,
                warmup_cycles: 200,
                measure_cycles: 500,
                drain_cycles: 2_000,
                message_length: 4,
                switching,
                traffic,
                ..SimConfig::default()
            };
            let r = run_clustered(&g, &module, &cfg);
            assert_eq!(r.injected, r.delivered, "{traffic:?} {switching:?}");
            assert!(r.avg_latency > 0.0);
        }
    }
}

/// Wormhole simulation runs deadlock-free on a generated super-IP network
/// with hop-indexed VCs sized to the diameter.
#[test]
fn wormhole_on_generated_super_ip() {
    use ipgraph::sim::wormhole::{VcPolicy, WormTraffic, WormholeConfig, WormholeSim};
    let g = hier::ring_cn(2, classic::hypercube(3), "Q3").build();
    let diameter = algo::diameter(&g) as usize;
    let sim = WormholeSim::new(&g);
    let out = sim.run(&WormholeConfig {
        vcs: diameter,
        buffer_flits: 2,
        packet_flits: 4,
        injection_rate: 0.02,
        cycles: 5_000,
        deadlock_threshold: 800,
        policy: VcPolicy::HopIndexed,
        traffic: WormTraffic::Uniform,
        ..WormholeConfig::default()
    });
    assert!(!out.is_deadlocked());
    let s = out.stats();
    assert!(s.delivered as f64 > 0.9 * s.injected as f64);
}

/// Serde round-trips: graphs, labels, permutations and specs survive
/// JSON serialization (the figure artifacts depend on this).
#[test]
fn serde_round_trips() {
    let g = classic::petersen();
    let json = serde_json::to_string(&g).unwrap();
    let back: Csr = serde_json::from_str(&json).unwrap();
    assert_eq!(g, back);

    let spec = SuperIpSpec::hsn(2, NucleusSpec::hypercube(2));
    let json = serde_json::to_string(&spec).unwrap();
    let back: SuperIpSpec = serde_json::from_str(&json).unwrap();
    assert_eq!(back.name, spec.name);
    assert_eq!(
        back.to_ip_spec().generate().unwrap().node_count(),
        spec.to_ip_spec().generate().unwrap().node_count()
    );

    let lab = Label::parse("3434 3434").unwrap();
    let back: Label = serde_json::from_str(&serde_json::to_string(&lab).unwrap()).unwrap();
    assert_eq!(lab, back);

    let p = Perm::cyclic_left(6, 2);
    let back: Perm = serde_json::from_str(&serde_json::to_string(&p).unwrap()).unwrap();
    assert_eq!(p, back);
}

/// Error paths surface cleanly across the API instead of panicking.
#[test]
fn failure_injection() {
    use ipgraph::core::builder::BuildOptions;
    // budget exhaustion
    let err = IpGraphSpec::star(8)
        .generate_with(BuildOptions { node_budget: 10 })
        .unwrap_err();
    assert!(matches!(err, IpgError::BudgetExceeded { budget: 10 }));
    // mismatched generator length
    assert!(IpGraphSpec::new(
        "bad",
        Label::distinct(4),
        vec![ipgraph::core::spec::Generator::auto(Perm::identity(5))],
    )
    .is_err());
    // routing with a foreign label
    let spec = SuperIpSpec::hsn(2, NucleusSpec::hypercube(1));
    let router = routing::SuperRouter::new(&spec).unwrap();
    let bad = Label::parse("9999").unwrap();
    assert!(router.route(&bad, &bad).is_err());
    // solver across orbits
    let s = IpGraphSpec::star(4);
    assert!(solve::solve(
        &s,
        &Label::parse("1234").unwrap(),
        &Label::parse("1123").unwrap(),
        1_000
    )
    .is_err());
}

/// Macro-star and rotator graphs (cited related work) integrate with the
/// metric pipeline.
#[test]
fn cited_networks_metrics() {
    let ms = ipdefs::macro_star_ip(2, 2).generate().unwrap();
    let g = ms.to_undirected_csr();
    assert_eq!(g.node_count(), 120);
    // MS(2,2) vs star S5: same size, lower degree (3 vs 4), larger diameter
    let s5 = classic::star(5);
    assert!(g.max_degree() < s5.max_degree());
    assert!(algo::diameter(&g) >= algo::diameter(&s5));

    let rot = ipdefs::rotator_ip(5).generate().unwrap().to_directed_csr();
    assert_eq!(algo::diameter(&rot), 4);
}
