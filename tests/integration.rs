//! Cross-crate integration tests: the three construction paths agree, the
//! router produces valid minimal-bounded walks on every family, metrics
//! compose, and the simulator runs on generated networks.

use ipgraph::prelude::*;

/// The three ways to build HSN(2, Q_n) agree: label generation (ipg-core),
/// tuple construction (ipg-core::superip), direct HCN (ipg-networks).
#[test]
fn three_construction_paths_agree() {
    for n in 1..=3usize {
        let spec = SuperIpSpec::hsn(2, NucleusSpec::hypercube(n));
        let ip = spec.to_ip_spec().generate().unwrap();
        let tn = TupleNetwork::from_spec(&spec).unwrap();
        // explicit isomorphism IP -> tuple
        ipgraph::core::superip::explicit_isomorphism(&spec, &ip, &tn).unwrap();
        // tuple over bit-encoded nucleus == direct HCN, arc for arc
        let tuple_direct = hier::hsn(2, classic::hypercube(n), &format!("Q{n}")).build();
        assert_eq!(tuple_direct, hier::hcn(n, false), "n={n}");
        // and all have the same fingerprint
        let f1 = algo::fingerprint(&ip.to_undirected_csr());
        let f2 = algo::fingerprint(&tn.build());
        let f3 = algo::fingerprint(&tuple_direct);
        assert_eq!(f1, f2);
        assert_eq!(f2, f3);
    }
}

/// End-to-end: spec -> generate -> route -> validate against BFS, across
/// every §3 family and several nuclei.
#[test]
fn routing_is_valid_and_bounded_across_families() {
    let nuclei = [
        NucleusSpec::hypercube(2),
        NucleusSpec::complete(3),
        NucleusSpec::ring(4),
    ];
    for nucleus in &nuclei {
        for spec in [
            SuperIpSpec::hsn(2, nucleus.clone()),
            SuperIpSpec::ring_cn(3, nucleus.clone()),
            SuperIpSpec::superflip(3, nucleus.clone()),
        ] {
            let ip = spec.to_ip_spec().generate().unwrap();
            let router = routing::SuperRouter::new(&spec).unwrap();
            let g = ip.to_undirected_csr();
            let bound = routing::predicted_diameter(&spec).unwrap();
            assert_eq!(algo::diameter(&g), bound, "{}", spec.name);
            // spot-check 40 pairs
            let n = ip.node_count() as u32;
            for i in 0..40u32 {
                let u = (i * 7919) % n;
                let v = (i * 104729 + 13) % n;
                let path = router.route(ip.label(u), ip.label(v)).unwrap();
                assert!(path.len() as u32 - 1 <= bound, "{}: {u}->{v}", spec.name);
                for w in path.windows(2) {
                    let a = ip.node_of(&w[0]).unwrap();
                    let b = ip.node_of(&w[1]).unwrap();
                    assert!(ip.arcs_of(a).contains(&b), "{}", spec.name);
                }
            }
        }
    }
}

/// Metrics pipeline: tuple network -> partition -> summary; values agree
/// between the exact and quotient paths.
#[test]
fn metrics_pipeline_consistency() {
    let tn = hier::complete_cn(3, classic::hypercube(3), "Q3");
    let g = tn.build();
    let part = partition::nucleus_partition(&tn);
    let s = summarize(&tn.name, &g, &part);
    assert_eq!(s.nodes, 512);
    assert_eq!(s.diameter, 11); // (3+1)·3 − 1
    assert_eq!(s.i_diameter, 2); // t = l − 1
    let (qd, qa) = imetrics::quotient_metrics(&g, &part);
    assert_eq!(qd, s.i_diameter);
    assert!((qa - s.avg_i_distance).abs() < 1e-9);
    assert!(s.dd_cost() >= s.id_cost());
    assert!(s.id_cost() >= s.ii_cost());
}

/// The simulator accepts generated super-IP networks and reproduces the
/// distance-latency correspondence on them.
#[test]
fn simulator_on_generated_network() {
    let tn = hier::hsn(2, classic::hypercube(3), "Q3");
    let g = tn.build();
    let (module, _) = tn.nucleus_partition();
    let cfg = SimConfig {
        injection_rate: 0.005,
        warmup_cycles: 300,
        measure_cycles: 1_000,
        drain_cycles: 2_000,
        on_module_interval: 1,
        off_module_interval: 1,
        seed: 3,
        ..SimConfig::default()
    };
    let r = run_clustered(&g, &module, &cfg);
    assert_eq!(r.injected, r.delivered, "light load should deliver all");
    let avg = algo::average_distance(&g);
    assert!((r.avg_latency - avg).abs() < 1.0);
}

/// Symmetric variants: vertex-transitive, regular, and correctly sized —
/// across families (the §3.5 claims, end to end).
#[test]
fn symmetric_variants_end_to_end() {
    let cases: Vec<(SuperIpSpec, u64)> = vec![
        (
            SuperIpSpec::hsn(2, NucleusSpec::hypercube(2)).symmetric(),
            2 * 16,
        ),
        (
            SuperIpSpec::ring_cn(3, NucleusSpec::hypercube(1)).symmetric(),
            3 * 8,
        ),
        (
            SuperIpSpec::superflip(3, NucleusSpec::hypercube(1)).symmetric(),
            6 * 8,
        ),
        (
            SuperIpSpec::complete_cn(3, NucleusSpec::hypercube(1)).symmetric(),
            3 * 8,
        ),
    ];
    for (spec, want) in cases {
        let ip = spec.to_ip_spec().generate().unwrap();
        assert_eq!(ip.node_count() as u64, want, "{}", spec.name);
        let g = ip.to_undirected_csr();
        assert!(g.is_regular(), "{}", spec.name);
        assert_eq!(
            symmetry::vertex_transitivity(&g, 10_000_000),
            symmetry::Transitivity::Yes,
            "{}",
            spec.name
        );
    }
}

/// The quotient-network machinery: QCN distances lower-bound the base
/// network's I-distances and the module map is consistent.
#[test]
fn quotient_network_consistency() {
    let q = hier::qcn(2, 5, 2);
    assert_eq!(q.graph.node_count(), (1 << 10) / 4); // 32^2 / 2^2
    assert!(algo::is_connected(&q.graph));
    let part = Partition::new(q.module.clone(), q.modules);
    assert_eq!(part.max_module_size(), 8); // 2^(5−2)
    let m = imetrics::exact_metrics(&q.graph, &part);
    assert!(m.i_diameter >= 1);
}

/// Generated de Bruijn and shuffle-exchange graphs plug into the routing
/// table / simulator machinery like any other Csr.
#[test]
fn ip_defined_networks_are_usable_downstream() {
    let db = ipdefs::debruijn_ip(5)
        .generate()
        .unwrap()
        .to_undirected_csr();
    assert!(algo::is_connected(&db));
    let table = ipgraph::sim::table::RoutingTable::new(&db);
    let p = table.path(0, 17).unwrap();
    assert!(p.len() >= 2);
    for w in p.windows(2) {
        assert!(db.has_arc(w[0], w[1]));
    }
}

/// RHSN recursion: sizes square at each level and diameters follow
/// Theorem 4.1 applied recursively.
#[test]
fn rhsn_recursive_diameters() {
    // level 2: HSN(2, Q2): D = 2·2 + 1 = 5. level 3: HSN(2, level2):
    // D = 2·5 + 1 = 11.
    let l2 = hier::rhsn(2, classic::hypercube(2), "Q2").build();
    assert_eq!(algo::diameter(&l2), 5);
    let l3 = hier::rhsn(3, classic::hypercube(2), "Q2").build();
    assert_eq!(l3.node_count(), 256);
    assert_eq!(algo::diameter(&l3), 11);
}
