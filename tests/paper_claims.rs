//! Every quantitative claim in the paper, as a test. Section references
//! follow Yeh & Parhami, ICPP 1999.

use ipgraph::prelude::*;

// ---------------------------------------------------------------- §2 ----

/// §2: the 6-star has 720 nodes, reached after enough generator sweeps,
/// and node X = 123456 has exactly the five listed neighbors.
#[test]
fn sec2_six_star_worked_example() {
    let ip = IpGraphSpec::star(6).generate().unwrap();
    assert_eq!(ip.node_count(), 720);
    let neighbors: Vec<String> = (0..5).map(|i| ip.label(ip.arc(0, i)).to_string()).collect();
    assert_eq!(
        neighbors,
        ["213456", "321456", "423156", "523416", "623451"]
    );
}

/// §2: the three-generator IP example yields 36 distinct nodes.
#[test]
fn sec2_ip_example_36_nodes() {
    let ip = IpGraphSpec::section2_example().generate().unwrap();
    assert_eq!(ip.node_count(), 36);
    // ... and the first two neighbor applications match the displayed
    // pattern: a swap of the first two symbols, a swap of 1st/3rd, and a
    // half rotation.
    let seed = ip.label(0).clone();
    let rot = ip.label(ip.arc(0, 2)).clone();
    assert_eq!(rot.symbols()[..3], seed.symbols()[3..]);
}

/// §2: HCN(2,2) generation — applying the three generators repeatedly to
/// the seed yields exactly 16 nodes, and the first super-generator
/// application maps the seed to itself.
#[test]
fn sec2_hcn22_generation() {
    let spec = SuperIpSpec::hsn(2, NucleusSpec::hypercube(2));
    let ip = spec.to_ip_spec().generate().unwrap();
    assert_eq!(ip.node_count(), 16);
    let t2_index = spec.nucleus_generator_count(); // supergen after nucleus gens
    assert_eq!(ip.arc(0, t2_index), 0, "T2 fixes the repeated seed");
}

/// §2: using any node's label as the seed regenerates the same graph
/// (checked on HCN(2,2): same size + isomorphic).
#[test]
fn sec2_seed_independence() {
    let spec = SuperIpSpec::hsn(2, NucleusSpec::hypercube(2)).to_ip_spec();
    let ip = spec.generate().unwrap();
    for v in [3u32, 7, 12] {
        let respec =
            IpGraphSpec::new("reseed", ip.label(v).clone(), spec.generators.clone()).unwrap();
        let other = respec.generate().unwrap();
        assert_eq!(other.node_count(), ip.node_count());
        assert_eq!(
            algo::fingerprint(&other.to_undirected_csr()),
            algo::fingerprint(&ip.to_undirected_csr())
        );
    }
}

/// §2: the de Bruijn graph, "one of the densest known graphs", arises
/// from two cyclic-shift generators on a repeated-pair seed.
#[test]
fn sec2_debruijn_definition() {
    for n in 2..=6 {
        let ip = ipdefs::debruijn_ip(n).generate().unwrap();
        assert_eq!(ip.node_count(), 1 << n);
        // out-degree exactly 2 (counting the fixed-point arcs at 00..0/11..1)
        assert_eq!(ip.generator_count(), 2);
    }
}

// ---------------------------------------------------------------- §3 ----

/// Theorem 3.1: degree ≤ #generators; inter-cluster degree ≤
/// #super-generators.
#[test]
fn theorem_3_1_degree_bounds() {
    for spec in [
        SuperIpSpec::hsn(3, NucleusSpec::hypercube(2)),
        SuperIpSpec::ring_cn(4, NucleusSpec::hypercube(1)),
        SuperIpSpec::complete_cn(4, NucleusSpec::hypercube(1)),
        SuperIpSpec::superflip(3, NucleusSpec::star(3)),
    ] {
        let ip = spec.to_ip_spec().generate().unwrap();
        let g = ip.to_undirected_csr();
        assert!(
            g.max_degree() <= spec.nucleus_generator_count() + spec.super_generator_count(),
            "{}",
            spec.name
        );
        let tn = TupleNetwork::from_spec(&spec).unwrap();
        let tg = tn.build();
        let part = partition::nucleus_partition(&tn);
        assert!(
            imetrics::i_degree(&tg, &part) <= spec.super_generator_count() as f64 + 1e-9,
            "{}",
            spec.name
        );
    }
}

/// Theorem 3.2: N = M^l, over a grid of nuclei and depths.
#[test]
fn theorem_3_2_sizes() {
    let nuclei: Vec<(NucleusSpec, u64)> = vec![
        (NucleusSpec::hypercube(1), 2),
        (NucleusSpec::hypercube(2), 4),
        (NucleusSpec::complete(3), 3),
        (NucleusSpec::ring(5), 5),
        (NucleusSpec::star(3), 6),
    ];
    for (nuc, m) in &nuclei {
        for l in 2..=3u32 {
            let spec = SuperIpSpec::hsn(l as usize, nuc.clone());
            let ip = spec.to_ip_spec().generate().unwrap();
            assert_eq!(ip.node_count() as u64, m.pow(l), "{}", spec.name);
        }
    }
}

/// §3.2: HCN(n,n) without diameter links is HSN(2, Q_n).
#[test]
fn hcn_equals_hsn2() {
    for n in 1..=4 {
        assert_eq!(
            hier::hcn(n, false),
            hier::hsn(2, classic::hypercube(n), "Q").build()
        );
    }
}

/// §3.2: an HSN embeds the corresponding hypercube with dilation 3 (and
/// the k-ary n-cube case degenerates to the same bound).
#[test]
fn hsn_embeds_hypercube_dilation_3() {
    for (l, n) in [(2usize, 2usize), (2, 3), (3, 2), (2, 4)] {
        let host = hier::hsn(l, classic::hypercube(n), "Q").build();
        let guest = classic::hypercube(l * n);
        let map: Vec<u32> = (0..guest.node_count() as u32).collect();
        let dil = ipgraph::core::embed::dilation(&guest, &host, &map).unwrap();
        assert!(dil <= 3, "HSN({l},Q{n}): dilation {dil}");
    }
}

/// §3.4: super-flip networks emulate cyclic-shift networks efficiently —
/// at minimum, each cyclic-shift super-generator action is within 2 flip
/// moves (L_1 = "flip l, then flip l−1" on block level).
#[test]
fn superflip_emulates_cyclic_shift() {
    use ipgraph::core::perm::Perm;
    for l in 3..=6usize {
        let shift = Perm::cyclic_left(l, 1);
        let f_l = Perm::flip_prefix(l, l);
        let f_lm1 = Perm::flip_prefix(l, l - 1);
        // rotate-left-by-one = flip everything, then flip the first l−1
        assert_eq!(f_l.then(&f_lm1), shift, "l={l}");
    }
}

/// §3.5: symmetric HSN has l!·M^l nodes; symmetric CN has l·M^l nodes.
#[test]
fn symmetric_sizes() {
    let m = 2u64; // Q1 nucleus
    for l in 2..=4usize {
        let hsn = SuperIpSpec::hsn(l, NucleusSpec::hypercube(1)).symmetric();
        let fact: u64 = (1..=l as u64).product();
        assert_eq!(
            hsn.to_ip_spec().generate().unwrap().node_count() as u64,
            fact * m.pow(l as u32)
        );
        let cn = SuperIpSpec::ring_cn(l, NucleusSpec::hypercube(1)).symmetric();
        assert_eq!(
            cn.to_ip_spec().generate().unwrap().node_count() as u64,
            l as u64 * m.pow(l as u32)
        );
    }
}

/// §3.5: symmetric super-IP graphs are Cayley graphs: distinct-symbol
/// seeds, vertex-symmetric and regular.
#[test]
fn symmetric_variants_are_cayley() {
    for spec in [
        SuperIpSpec::hsn(2, NucleusSpec::hypercube(2)).symmetric(),
        SuperIpSpec::ring_cn(3, NucleusSpec::hypercube(1)).symmetric(),
    ] {
        let ipspec = spec.to_ip_spec();
        assert!(ipspec.seed.has_distinct_symbols(), "{}", spec.name);
        let g = ipspec.generate().unwrap().to_undirected_csr();
        assert!(g.is_regular());
        assert_eq!(
            symmetry::vertex_transitivity(&g, 10_000_000),
            symmetry::Transitivity::Yes,
            "{}",
            spec.name
        );
    }
}

// ---------------------------------------------------------------- §4 ----

/// Theorem 4.1 + Corollary 4.2 on a grid: BFS diameter = l·D_G + t =
/// (D_G+1)·l − 1 for all §3 families (t = l − 1).
#[test]
fn corollary_4_2_diameters() {
    let nuclei = [
        (NucleusSpec::hypercube(1), 1u32),
        (NucleusSpec::hypercube(2), 2),
        (NucleusSpec::complete(4), 1),
        (NucleusSpec::star(3), 3), // S3 is a 6-cycle: diameter 3
    ];
    for (nuc, d_g) in &nuclei {
        for l in 2..=3usize {
            for spec in [
                SuperIpSpec::hsn(l, nuc.clone()),
                SuperIpSpec::ring_cn(l, nuc.clone()),
                SuperIpSpec::complete_cn(l, nuc.clone()),
                SuperIpSpec::superflip(l, nuc.clone()),
            ] {
                assert_eq!(routing::t_value(&spec), Some(l - 1), "{}", spec.name);
                let g = spec.to_ip_spec().generate().unwrap().to_undirected_csr();
                assert_eq!(
                    algo::diameter(&g),
                    (d_g + 1) * l as u32 - 1,
                    "{}",
                    spec.name
                );
            }
        }
    }
}

/// Theorem 4.3: symmetric diameter = l·D_G + t_S, verified by exact BFS.
#[test]
fn theorem_4_3_symmetric_diameters() {
    for spec in [
        SuperIpSpec::hsn(2, NucleusSpec::hypercube(1)).symmetric(),
        SuperIpSpec::hsn(3, NucleusSpec::hypercube(1)).symmetric(),
        SuperIpSpec::ring_cn(3, NucleusSpec::hypercube(1)).symmetric(),
        SuperIpSpec::ring_cn(4, NucleusSpec::hypercube(1)).symmetric(),
        SuperIpSpec::superflip(3, NucleusSpec::hypercube(1)).symmetric(),
        SuperIpSpec::hsn(2, NucleusSpec::hypercube(2)).symmetric(),
    ] {
        let g = spec.to_ip_spec().generate().unwrap().to_undirected_csr();
        assert_eq!(
            algo::diameter(&g),
            routing::predicted_diameter(&spec).unwrap(),
            "{}",
            spec.name
        );
    }
}

/// Theorem 4.4 (spirit): with a generalized-hypercube nucleus the family's
/// diameter stays proportional to l·(D_G+1) while the size grows as M^l —
/// i.e. diameter is logarithmic in N with the nucleus-controlled base.
#[test]
fn theorem_4_4_diameter_scaling() {
    // GH(3,3) nucleus: 9 nodes, degree 4, diameter 2.
    let gh = classic::generalized_hypercube(&[3, 3]);
    assert_eq!(algo::diameter(&gh), 2);
    for l in 2..=3usize {
        let tn = hier::hsn(l, gh.clone(), "GH33");
        let g = tn.build();
        assert_eq!(g.node_count(), 9usize.pow(l as u32));
        assert_eq!(algo::diameter(&g) as usize, 3 * l - 1);
    }
}

// ---------------------------------------------------------------- §5 ----

/// §5.3: off-module link counts — ring-CN 1/2, HSN & complete-CN &
/// super-flip l−1; hypercube n−c; star n−k; de Bruijn ≤ 4.
#[test]
fn sec5_3_off_module_links() {
    let max_off = |g: &Csr, class: &[u32]| -> usize {
        (0..g.node_count() as u32)
            .map(|u| {
                g.neighbors(u)
                    .iter()
                    .filter(|&&v| class[u as usize] != class[v as usize])
                    .count()
            })
            .max()
            .unwrap()
    };

    for (l, want) in [(2usize, 1usize), (3, 2), (4, 2)] {
        let tn = hier::ring_cn(l, classic::hypercube(2), "Q2");
        let (class, _) = tn.nucleus_partition();
        assert_eq!(max_off(&tn.build(), &class), want, "ring-CN l={l}");
    }
    for l in 2..=4usize {
        for tn in [
            hier::hsn(l, classic::hypercube(2), "Q2"),
            hier::complete_cn(l, classic::hypercube(2), "Q2"),
            hier::superflip(l, classic::hypercube(2), "Q2"),
        ] {
            let (class, _) = tn.nucleus_partition();
            assert_eq!(max_off(&tn.build(), &class), l - 1, "{}", tn.name);
        }
    }
    // hypercube: a node of Q6 with Q3 modules has 3 off-module links
    let g = classic::hypercube(6);
    let p = partition::subcube_partition(6, 3);
    assert_eq!(max_off(&g, &p.class), 3);
    // star: S5 with S3 modules → 2 off-module links
    let labels = classic::star_labels(5);
    let p = partition::substar_partition(&labels, 3);
    assert_eq!(max_off(&classic::star(5), &p.class), 2);
    // de Bruijn: MSB packing keeps off-module links ≤ 4
    let g = classic::debruijn(8);
    let p = partition::subcube_partition(8, 4); // id = bits; MSB grouping
    assert!(max_off(&g, &p.class) <= 4);
}

/// §5 composite claims at 4096 nodes: complete-CN/HSN beat the hypercube
/// on ID- and II-cost; the paper's headline result, measured exactly.
#[test]
fn sec5_cost_comparison_4096_nodes() {
    let cube = {
        let g = classic::hypercube(12);
        let p = partition::subcube_partition(12, 4);
        summarize("Q12", &g, &p)
    };
    let mut wins = 0;
    for tn in [
        hier::ring_cn(3, classic::hypercube(4), "Q4"),
        hier::hsn(3, classic::hypercube(4), "Q4"),
        hier::complete_cn(3, classic::hypercube(4), "Q4"),
    ] {
        let g = tn.build();
        let p = partition::nucleus_partition(&tn);
        let s = summarize(&tn.name, &g, &p);
        assert!(s.id_cost() < cube.id_cost(), "{} ID", s.name);
        assert!(s.ii_cost() < cube.ii_cost(), "{} II", s.name);
        wins += 1;
    }
    assert_eq!(wins, 3);
}

/// §5.2: "the maximum throughput of a network is inversely proportional
/// to its average inter-cluster distance when ... the off-module
/// bandwidth is the communication bottleneck" — simulated.
#[test]
fn sec5_2_throughput_tracks_i_distance() {
    // 256-node instances under *unit node off-module capacity* (§5.3):
    // both networks get the same aggregate off-module bandwidth per node,
    // so the hypercube's 4 off-module links each run 4x slower than the
    // ring-CN's single off-module link.
    let cfg = SimConfig {
        injection_rate: 0.15,
        warmup_cycles: 500,
        measure_cycles: 2_000,
        drain_cycles: 2_000,
        on_module_interval: 1,
        off_module_interval: 4,
        seed: 5,
        ..SimConfig::default()
    };
    let tn = hier::ring_cn(2, classic::hypercube(4), "Q4");
    let g_cn = tn.build();
    let (class_cn, _) = tn.nucleus_partition();
    let cn = run_clustered(&g_cn, &class_cn, &cfg);

    let cube_cfg = SimConfig {
        off_module_interval: 16, // 4 links × interval 16 = 1 link × interval 4
        ..cfg
    };
    let g_q8 = classic::hypercube(8);
    let p_q8 = partition::subcube_partition(8, 4);
    let q8 = run_clustered(&g_q8, &p_q8.class, &cube_cfg);

    assert!(
        cn.throughput > q8.throughput,
        "ring-CN {} vs hypercube {}",
        cn.throughput,
        q8.throughput
    );
}
