//! Property-based tests (proptest) over the core data structures and
//! model invariants.

use ipgraph::core::perm::Perm;
use ipgraph::core::spec::Generator;
use ipgraph::prelude::*;
use proptest::prelude::*;

/// Strategy: a random permutation of k positions.
fn perm(k: usize) -> impl Strategy<Value = Perm> {
    Just(()).prop_perturb(move |_, mut rng| {
        let mut img: Vec<u16> = (0..k as u16).collect();
        for i in (1..k).rev() {
            let j = (rng.next_u32() as usize) % (i + 1);
            img.swap(i, j);
        }
        Perm::from_image(img).unwrap()
    })
}

/// Strategy: a random label of k symbols over a small alphabet (repeats
/// likely — the point of the IP model).
fn label(k: usize, radix: u8) -> impl Strategy<Value = Label> {
    proptest::collection::vec(0..radix, k).prop_map(Label::from)
}

/// A random small nucleus (paper §3 building blocks). All are
/// inverse-closed, so the generated graphs are symmetric.
fn nucleus() -> impl Strategy<Value = NucleusSpec> {
    (0usize..5, 0usize..3).prop_map(|(kind, p)| match kind {
        0 => NucleusSpec::hypercube(1 + p),      // M = 2, 4, 8
        1 => NucleusSpec::complete(3 + (p % 2)), // M = 3, 4
        2 => NucleusSpec::star(3 + (p % 2)),     // M = 6, 24
        3 => NucleusSpec::ring(3 + p),           // M = 3, 4, 5
        _ => NucleusSpec::folded_hypercube(2),   // M = 4
    })
}

/// A random super-IP family constructor applied to `(l, nucleus)`.
fn super_family(family: usize, l: usize, nuc: NucleusSpec) -> SuperIpSpec {
    match family % 4 {
        0 => SuperIpSpec::hsn(l, nuc),
        1 => SuperIpSpec::ring_cn(l, nuc),
        2 => SuperIpSpec::complete_cn(l, nuc),
        _ => SuperIpSpec::superflip(l, nuc),
    }
}

fn factorial(l: u64) -> u64 {
    (1..=l).product()
}

proptest! {
    #[test]
    fn perm_inverse_roundtrip(p in perm(8)) {
        prop_assert!(p.then(&p.inverse()).is_identity());
        prop_assert!(p.inverse().then(&p).is_identity());
    }

    #[test]
    fn perm_composition_is_associative(a in perm(7), b in perm(7), c in perm(7)) {
        prop_assert_eq!(a.then(&b).then(&c), a.then(&b.then(&c)));
    }

    #[test]
    fn perm_apply_matches_composition(a in perm(6), b in perm(6), l in label(6, 4)) {
        let via_compose = a.then(&b).apply(l.symbols());
        let via_apply = b.apply(&a.apply(l.symbols()));
        prop_assert_eq!(via_compose, via_apply);
    }

    #[test]
    fn perm_order_divides_group_order(p in perm(6)) {
        // order of any element of S6 divides 720
        prop_assert_eq!(720 % p.order(), 0);
    }

    #[test]
    fn cycles_roundtrip(p in perm(9)) {
        let cycles = p.cycles();
        let refs: Vec<&[usize]> = cycles.iter().map(|c| c.as_slice()).collect();
        prop_assert_eq!(Perm::from_cycles(9, &refs).unwrap(), p);
    }

    #[test]
    fn generated_graphs_preserve_multisets(
        seed in label(6, 3),
        p1 in perm(6),
        p2 in perm(6),
    ) {
        let spec = IpGraphSpec::new(
            "prop",
            seed.clone(),
            vec![Generator::auto(p1), Generator::auto(p2)],
        ).unwrap();
        let ip = spec.generate().unwrap();
        let sig = seed.multiset_signature();
        for v in 0..ip.node_count() as u32 {
            prop_assert_eq!(ip.label(v).multiset_signature(), sig.clone());
        }
        prop_assert!(ip.verify_closed());
    }

    #[test]
    fn generation_is_seed_independent_within_component(
        seed in label(5, 3),
        p1 in perm(5),
        p2 in perm(5),
    ) {
        let spec = IpGraphSpec::new(
            "prop",
            seed,
            vec![Generator::auto(p1), Generator::auto(p2)],
        ).unwrap();
        let ip = spec.generate().unwrap();
        // re-seed from the "middle" node: same node set when generators
        // are applied forward-only... only guaranteed if the component is
        // strongly connected; check reachability first.
        let g = ip.to_directed_csr();
        if algo::is_strongly_connected(&g) {
            let v = (ip.node_count() as u32) / 2;
            let re = IpGraphSpec::new(
                "re",
                ip.label(v).clone(),
                ip.spec().generators.clone(),
            ).unwrap().generate().unwrap();
            prop_assert_eq!(re.node_count(), ip.node_count());
        }
    }

    #[test]
    fn degree_bounded_by_generator_count(
        seed in label(6, 3),
        gens in proptest::collection::vec(perm(6), 1..4),
    ) {
        let spec = IpGraphSpec::new(
            "prop",
            seed,
            gens.into_iter().map(Generator::auto).collect(),
        ).unwrap();
        let ip = spec.generate().unwrap();
        let g = ip.to_directed_csr();
        // Theorem 3.1 (directed out-degree form)
        prop_assert!(g.max_degree() <= ip.generator_count());
    }

    #[test]
    fn bfs01_lower_bounds_bfs(seed_nodes in 4usize..32) {
        // on a ring with alternating modules, I-distance ≤ distance
        let g = classic::ring(seed_nodes.max(4));
        let n = g.node_count();
        let class: Vec<u32> = (0..n as u32).map(|v| v / 2).collect();
        let part = Partition::new(class, n.div_ceil(2));
        let d = algo::bfs(&g, 0);
        let di = imetrics::i_distances(&g, &part, 0);
        for v in 0..n {
            prop_assert!(di[v] <= d[v]);
        }
    }

    #[test]
    fn quotient_distance_equals_i_distance_on_tuples(l in 2usize..4, n in 1usize..3) {
        let tn = hier::hsn(l, classic::hypercube(n), "Q");
        let g = tn.build();
        let part = partition::nucleus_partition(&tn);
        let (de, ae) = imetrics::exact_distance_metrics(&g, &part);
        let (dq, aq) = imetrics::quotient_metrics(&g, &part);
        prop_assert_eq!(de, dq);
        prop_assert!((ae - aq).abs() < 1e-9);
    }

    #[test]
    fn symmetrize_is_idempotent(edges in proptest::collection::vec((0u32..20, 0u32..20), 0..60)) {
        let g = Csr::from_edges(20, edges, false);
        let s1 = g.symmetrized();
        let s2 = s1.symmetrized();
        prop_assert_eq!(&s1, &s2);
        prop_assert!(s1.is_symmetric());
    }

    #[test]
    fn quotient_preserves_connectivity(edges in proptest::collection::vec((0u32..16, 0u32..16), 20..80)) {
        let g = Csr::from_edges(16, edges, true);
        let class: Vec<u32> = (0..16u32).map(|v| v % 4).collect();
        let q = g.quotient(&class, 4);
        if algo::is_connected(&g) {
            prop_assert!(algo::is_connected(&q));
        }
    }

    #[test]
    fn multiset_rank_roundtrip(symbols in proptest::collection::vec(0u8..4, 1..9)) {
        use ipgraph::core::rank;
        let mut counts = [0u32; 4];
        for &s in &symbols {
            counts[s as usize] += 1;
        }
        let r = rank::multiset_rank(&symbols);
        let back = rank::multiset_unrank(&counts, r).unwrap();
        prop_assert_eq!(back, symbols);
    }

    #[test]
    fn multiset_rank_respects_lex_order(
        a in proptest::collection::vec(0u8..3, 6),
        b in proptest::collection::vec(0u8..3, 6),
    ) {
        use ipgraph::core::rank;
        // comparable only when same multiset
        let mut ma = a.clone();
        let mut mb = b.clone();
        ma.sort_unstable();
        mb.sort_unstable();
        if ma == mb {
            let (ra, rb) = (rank::multiset_rank(&a), rank::multiset_rank(&b));
            prop_assert_eq!(a.cmp(&b), ra.cmp(&rb));
        }
    }

    #[test]
    fn connectivity_whitney_inequalities(edges in proptest::collection::vec((0u32..10, 0u32..10), 8..40)) {
        use ipgraph::core::connectivity::{edge_connectivity, vertex_connectivity};
        let g = Csr::from_edges(10, edges, true);
        if algo::is_connected(&g) && g.min_degree() > 0 {
            let kappa = vertex_connectivity(&g);
            let lambda = edge_connectivity(&g);
            // Whitney: κ ≤ λ ≤ δ
            prop_assert!(kappa <= lambda, "κ={kappa} λ={lambda}");
            prop_assert!(lambda as usize <= g.min_degree());
        }
    }

    #[test]
    fn cut_size_never_below_kl_result(edges in proptest::collection::vec((0u32..12, 0u32..12), 6..40)) {
        use ipgraph::prelude::bisection;
        let g = Csr::from_edges(12, edges, true);
        let kl = bisection::bisection_width_kl(&g, 4, 9);
        let exact = bisection::bisection_width_exact(&g);
        prop_assert!(kl >= exact, "heuristic {kl} below exact {exact}?!");
    }

    #[test]
    fn prefix_emulation_matches_sequential(values in proptest::collection::vec(0u64..1000, 16)) {
        use ipgraph::prelude::*;
        let host = classic::hypercube(4);
        let map: Vec<u32> = (0..16).collect();
        let emu = HostEmulator::new(&host, &map);
        let (prefix, _) = emu.parallel_prefix(&values);
        let mut acc = 0u64;
        for (i, &v) in values.iter().enumerate() {
            acc += v;
            prop_assert_eq!(prefix[i], acc);
        }
    }

    #[test]
    fn bitonic_sort_matches_std_sort(values in proptest::collection::vec(0u64..100, 32)) {
        use ipgraph::prelude::*;
        let host = classic::hypercube(5);
        let map: Vec<u32> = (0..32).collect();
        let emu = HostEmulator::new(&host, &map);
        let mut keys = values.clone();
        emu.bitonic_sort(&mut keys);
        let mut expect = values;
        expect.sort_unstable();
        prop_assert_eq!(keys, expect);
    }

    #[test]
    fn thm_3_2_size_is_m_pow_l(l in 2usize..4, family in 0usize..4, nuc in nucleus()) {
        // Theorem 3.2: a super-IP graph over an M-node nucleus with a
        // repeated seed has exactly M^l nodes, for every generator family.
        let m = nuc.generate().unwrap().node_count() as u64;
        let expect = m.pow(l as u32);
        if expect <= 20_000 {
            let spec = super_family(family, l, nuc);
            prop_assert_eq!(spec.expected_size().unwrap(), expect);
            let ip = spec.to_ip_spec().generate().unwrap();
            prop_assert_eq!(ip.node_count() as u64, expect, "{}", spec.name);
        }
    }

    #[test]
    fn thm_3_2_symmetric_sizes(l in 2usize..4, kind in 0usize..4) {
        // §3.5 refinement: with a distinct-shifted seed the size picks up
        // the block-group order — l!·M^l for HSN, l·M^l for the ring CN.
        // Symmetric (distinct-shifted) seeds need a distinct-symbol
        // nucleus seed (§3.5) — hypercube and star qualify.
        let nuc = match kind {
            0 => NucleusSpec::hypercube(1), // M = 2
            1 => NucleusSpec::hypercube(2), // M = 4
            2 => NucleusSpec::star(3),      // M = 6
            _ => NucleusSpec::hypercube(3), // M = 8
        };
        let m = nuc.generate().unwrap().node_count() as u64;
        let hsn = SuperIpSpec::hsn(l, nuc.clone()).symmetric();
        let expect_hsn = factorial(l as u64) * m.pow(l as u32);
        prop_assert_eq!(hsn.expected_size().unwrap(), expect_hsn);
        let ip = hsn.to_ip_spec().generate().unwrap();
        prop_assert_eq!(ip.node_count() as u64, expect_hsn, "{}", hsn.name);

        let cn = SuperIpSpec::ring_cn(l, nuc).symmetric();
        let expect_cn = l as u64 * m.pow(l as u32);
        prop_assert_eq!(cn.expected_size().unwrap(), expect_cn);
        let ip = cn.to_ip_spec().generate().unwrap();
        prop_assert_eq!(ip.node_count() as u64, expect_cn, "{}", cn.name);
    }

    #[test]
    fn thm_3_1_degree_bounds_on_super_specs(l in 2usize..4, family in 0usize..4, nuc in nucleus()) {
        // Theorem 3.1: node degree ≤ #generators (nucleus + super), and
        // inter-cluster degree ≤ #super-generators under nucleus packing.
        let m = nuc.generate().unwrap().node_count() as u64;
        if m.pow(l as u32) <= 20_000 {
            let spec = super_family(family, l, nuc);
            let bound = spec.nucleus_generator_count() + spec.super_generator_count();
            let ip = spec.to_ip_spec().generate().unwrap();
            prop_assert!(ip.to_directed_csr().max_degree() <= bound, "{}", spec.name);
            if ip.spec().is_inverse_closed() {
                prop_assert!(ip.to_undirected_csr().max_degree() <= bound, "{}", spec.name);
            }
            let tn = TupleNetwork::from_spec(&spec).unwrap();
            let tg = tn.build();
            let (class, _) = tn.nucleus_partition();
            let max_i_degree = (0..tg.node_count() as u32)
                .map(|u| {
                    tg.neighbors(u)
                        .iter()
                        .filter(|&&v| class[u as usize] != class[v as usize])
                        .count()
                })
                .max()
                .unwrap_or(0);
            prop_assert!(
                max_i_degree <= spec.super_generator_count(),
                "{}: I-degree {} > {}",
                spec.name,
                max_i_degree,
                spec.super_generator_count()
            );
        }
    }

    #[test]
    fn router_paths_valid_on_random_specs(
        l in 2usize..4,
        family in 0usize..4,
        kind in 0usize..4,
        pairs in proptest::collection::vec((0u32..4096, 0u32..4096), 1..5),
    ) {
        // Theorem 4.1/4.3: the constructive router produces valid edge
        // walks no longer than the claimed diameter, on random specs of
        // every family — plain and symmetric seeds.
        let (nuc, sym) = match kind {
            0 => (NucleusSpec::hypercube(1), false),
            1 => (NucleusSpec::hypercube(2), false),
            2 => (NucleusSpec::complete(3), false),
            _ => (NucleusSpec::hypercube(1), true),
        };
        let mut spec = super_family(family, l, nuc);
        if sym {
            spec = spec.symmetric();
        }
        if spec.expected_size().unwrap() <= 5_000 {
            let ip = spec.to_ip_spec().generate().unwrap();
            let router = routing::SuperRouter::new(&spec).unwrap();
            let bound = routing::predicted_diameter(&spec).unwrap() as usize;
            let n = ip.node_count() as u32;
            for (u, v) in pairs {
                let (u, v) = (u % n, v % n);
                let path = router.route(ip.label(u), ip.label(v)).unwrap();
                prop_assert!(
                    path.len() - 1 <= bound,
                    "{}: |path| {} > diameter {}",
                    spec.name,
                    path.len() - 1,
                    bound
                );
                prop_assert_eq!(path.first().unwrap(), ip.label(u));
                prop_assert_eq!(path.last().unwrap(), ip.label(v));
                for w in path.windows(2) {
                    let a = ip.node_of(&w[0]).unwrap();
                    let b = ip.node_of(&w[1]).unwrap();
                    prop_assert!(ip.arcs_of(a).contains(&b), "{}: not an arc", spec.name);
                }
            }
        }
    }

    #[test]
    fn codec_roundtrip_bijective(l in 2usize..4, family in 0usize..4, kind in 0usize..5) {
        // unrank(rank(x)) == x and rank is a bijection onto 0..N across
        // random super-IP specs — every family, repeated and symmetric
        // (distinct-shifted) seeds.
        let (nuc, sym) = match kind {
            0 => (NucleusSpec::hypercube(1), false),
            1 => (NucleusSpec::hypercube(2), false),
            2 => (NucleusSpec::complete(3), false),
            3 => (NucleusSpec::ring(4), false),
            _ => (NucleusSpec::hypercube(1), true),
        };
        let mut spec = super_family(family, l, nuc);
        if sym {
            spec = spec.symmetric();
        }
        if spec.expected_size().unwrap() <= 5_000 {
            let codec = spec.codec().unwrap();
            let n = codec.node_count() as u32;
            // in-range: exactly Theorem-3.2-many ids
            prop_assert_eq!(codec.node_count() as u64, spec.expected_size().unwrap());
            let mut buf = vec![0u8; codec.label_len()];
            for id in 0..n {
                codec.decode_into(id, &mut buf);
                // encode(decode(id)) == id for all ids ⇒ decode is
                // injective and encode surjective on 0..N: a bijection.
                prop_assert_eq!(codec.encode(&buf), Some(id), "{}", spec.name);
            }
        }
    }

    #[test]
    fn codec_csr_matches_interned(l in 2usize..3, family in 0usize..4, kind in 0usize..5) {
        // The arithmetic CSR is byte-identical to the hash-interned
        // builder's CSR after renumbering interned ids through the codec.
        let (nuc, sym) = match kind {
            0 => (NucleusSpec::hypercube(1), false),
            1 => (NucleusSpec::hypercube(2), false),
            2 => (NucleusSpec::complete(3), false),
            3 => (NucleusSpec::ring(4), false),
            _ => (NucleusSpec::hypercube(2), true),
        };
        let mut spec = super_family(family, l, nuc);
        if sym {
            spec = spec.symmetric();
        }
        if spec.expected_size().unwrap() <= 2_000 {
            let ip = spec.to_ip_spec().generate().unwrap();
            let codec = spec.codec().unwrap();
            let map = codec.renumbering(&ip).unwrap();
            prop_assert_eq!(
                ip.to_directed_csr().relabeled(&map),
                codec.build_directed_csr(),
                "{}",
                spec.name
            );
        }
    }

    #[test]
    fn codec_packed_matches_arcs(l in 2usize..4, family in 0usize..4, sym in 0usize..2) {
        // byte-shuffle (packed) neighbor generation agrees with the
        // mixed-radix arithmetic path, generator by generator.
        let mut spec = super_family(family, l, NucleusSpec::hypercube(2));
        if sym == 1 {
            spec = spec.symmetric();
        }
        if spec.expected_size().unwrap() <= 2_000 {
            let codec = spec.codec().unwrap();
            prop_assert!(codec.supports_packed(), "{}: k > 16?", spec.name);
            let n = codec.node_count() as u32;
            let mut arcs = Vec::new();
            for id in 0..n {
                arcs.clear();
                codec.arcs_into(id, &mut arcs);
                prop_assert_eq!(arcs.len(), codec.generator_count());
                for (gi, &arc) in arcs.iter().enumerate() {
                    prop_assert_eq!(codec.packed_neighbor(id, gi), arc, "{}", spec.name);
                }
            }
        }
    }

    #[test]
    fn codec_router_path_lengths_match_bfs_table(
        l in 2usize..4,
        family in 0usize..4,
        kind in 0usize..5,
        pairs in proptest::collection::vec((0u32..4096, 0u32..4096), 4..12),
    ) {
        // The table-free codec router and the all-pairs BFS table are both
        // exact-shortest: on random super-IP specs (every family, plain and
        // symmetric seeds) sampled pairs must get equal path lengths, and
        // every codec hop must be a real link.
        use ipgraph::core::tuple_routing::ShortestTupleRouter;
        use ipgraph::sim::table::RoutingTable;
        use ipgraph::sim::Router;
        let (nuc, sym) = match kind {
            0 => (NucleusSpec::hypercube(1), false),
            1 => (NucleusSpec::hypercube(2), false),
            2 => (NucleusSpec::complete(3), false),
            3 => (NucleusSpec::ring(4), false),
            _ => (NucleusSpec::hypercube(1), true),
        };
        let mut spec = super_family(family, l, nuc);
        if sym {
            spec = spec.symmetric();
        }
        if spec.expected_size().unwrap() <= 2_000 {
            let tn = TupleNetwork::from_spec(&spec).unwrap();
            let g = tn.build();
            let table = RoutingTable::new(&g);
            let codec = ShortestTupleRouter::new(tn).unwrap();
            prop_assert_eq!(Router::node_count(&table), Router::node_count(&codec));
            let n = g.node_count() as u32;
            for (u, d) in pairs {
                let (u, d) = (u % n, d % n);
                let pt = Router::path(&table, u, d).unwrap();
                let pc = Router::path(&codec, u, d).unwrap();
                prop_assert_eq!(
                    pt.len(), pc.len(),
                    "{}: table and codec disagree on |path({}, {})|",
                    spec.name, u, d
                );
                for w in pc.windows(2) {
                    prop_assert!(g.has_arc(w[0], w[1]), "{}: codec hop is not a link", spec.name);
                }
            }
        }
    }

    #[test]
    fn detour_paths_are_valid_and_shortest_on_the_faulted_graph(
        l in 2usize..4,
        family in 0usize..4,
        kind in 0usize..4,
        kills in proptest::collection::vec((0usize..4096, 0u32..64), 0..6),
        node_kills in proptest::collection::vec(0u32..4096, 0..2),
        pairs in proptest::collection::vec((0u32..4096, 0u32..4096), 4..10),
    ) {
        // On a random super-IP spec with a random fault set, every
        // DetourTupleRouter path must exist exactly when the faulted
        // graph connects the pair, stay on usable (alive) links only,
        // and match the BFS-on-faulted-graph distance exactly — the
        // detour never pays more than the faulted shortest path.
        use ipgraph::core::fault::{bfs_faulted, FaultView};
        use ipgraph::core::tuple_routing::ShortestTupleRouter;
        use ipgraph::sim::{DetourRouter, Router};
        let nuc = match kind {
            0 => NucleusSpec::hypercube(1),
            1 => NucleusSpec::hypercube(2),
            2 => NucleusSpec::complete(3),
            _ => NucleusSpec::ring(4),
        };
        let spec = super_family(family, l, nuc);
        if spec.expected_size().unwrap() <= 2_000 {
            let tn = TupleNetwork::from_spec(&spec).unwrap();
            let g = tn.build();
            let n = g.node_count() as u32;
            let codec = ShortestTupleRouter::new(tn).unwrap();
            let router = DetourRouter::new(codec, g.clone()).unwrap();
            // random fault set: a few links (picked by node + neighbor
            // offset, staying below the degree so the pick is a real
            // link) and at most one node.
            let mut view = FaultView::new(n as usize);
            for (u, off) in kills {
                let u = (u % n as usize) as u32;
                let nbrs = g.neighbors(u);
                if !nbrs.is_empty() {
                    view.kill_link(u, nbrs[off as usize % nbrs.len()]);
                }
            }
            for v in node_kills {
                view.kill_node(v % n);
            }
            for (u, d) in pairs {
                let (u, d) = (u % n, d % n);
                if u == d {
                    continue;
                }
                let dist = bfs_faulted(&g, &view, d)[u as usize];
                match Router::path_faulted(&router, u, d, &view) {
                    Ok(path) => {
                        prop_assert_eq!(*path.first().unwrap(), u);
                        prop_assert_eq!(*path.last().unwrap(), d);
                        for w in path.windows(2) {
                            prop_assert!(g.has_arc(w[0], w[1]),
                                "{}: detour hop {}->{} is not a link", spec.name, w[0], w[1]);
                            prop_assert!(view.arc_usable(w[0], w[1]),
                                "{}: detour hop {}->{} crosses dead equipment", spec.name, w[0], w[1]);
                        }
                        prop_assert_eq!(
                            path.len() as u32 - 1, dist,
                            "{}: detour path |{}->{}| != faulted BFS distance", spec.name, u, d
                        );
                    }
                    Err(_) => {
                        prop_assert_eq!(
                            dist, u32::MAX,
                            "{}: router says unreachable but faulted BFS connects {}->{}",
                            spec.name, u, d
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn detour_router_with_zero_faults_degenerates_to_the_codec_router(
        l in 2usize..4,
        family in 0usize..4,
        pairs in proptest::collection::vec((0u32..4096, 0u32..4096), 4..10),
    ) {
        // With an empty fault view the detour wrapper must reproduce the
        // inner codec router's schedules byte for byte: identical next
        // hops and identical full paths.
        use ipgraph::core::fault::FaultView;
        use ipgraph::core::tuple_routing::ShortestTupleRouter;
        use ipgraph::sim::{DetourRouter, Router};
        let spec = super_family(family, l, NucleusSpec::hypercube(1 + l % 2));
        if spec.expected_size().unwrap() <= 2_000 {
            let tn = TupleNetwork::from_spec(&spec).unwrap();
            let g = tn.build();
            let n = g.node_count() as u32;
            let inner = ShortestTupleRouter::new(tn.clone()).unwrap();
            let wrapped = DetourRouter::new(ShortestTupleRouter::new(tn).unwrap(), g).unwrap();
            let view = FaultView::new(n as usize);
            for (u, d) in pairs {
                let (u, d) = (u % n, d % n);
                prop_assert_eq!(
                    Router::next_hop_faulted(&wrapped, u, d, &view),
                    Router::next_hop(&inner, u, d)
                );
                if u != d {
                    prop_assert_eq!(
                        Router::path_faulted(&wrapped, u, d, &view).unwrap(),
                        Router::path(&inner, u, d).unwrap()
                    );
                }
            }
        }
    }

    #[test]
    fn router_paths_valid_on_random_pairs(pairs in proptest::collection::vec((0u32..64, 0u32..64), 1..8)) {
        let spec = SuperIpSpec::hsn(3, NucleusSpec::hypercube(1));
        let ip = spec.to_ip_spec().generate().unwrap();
        let router = routing::SuperRouter::new(&spec).unwrap();
        let bound = routing::predicted_diameter(&spec).unwrap() as usize;
        let n = ip.node_count() as u32;
        for (u, v) in pairs {
            let (u, v) = (u % n, v % n);
            let path = router.route(ip.label(u), ip.label(v)).unwrap();
            prop_assert!(path.len() - 1 <= bound);
            prop_assert_eq!(path.first().unwrap(), ip.label(u));
            prop_assert_eq!(path.last().unwrap(), ip.label(v));
            for w in path.windows(2) {
                let a = ip.node_of(&w[0]).unwrap();
                let b = ip.node_of(&w[1]).unwrap();
                prop_assert!(ip.arcs_of(a).contains(&b));
            }
        }
    }
}

/// Sparse-vs-dense equivalence battery (DESIGN.md §13): the worklist
/// kernels must reproduce the dense oracle byte for byte on random
/// super-IP specs × random traffic × optional fault campaigns. A
/// deterministic parameter sweep rather than a proptest strategy — each
/// case builds a routing table and runs several simulations, so the
/// sweep is kept to a dozen hand-spread points (seeds derived by
/// SplitMix so the traffic still varies run to run of the suite).
#[test]
fn sparse_engine_matches_dense_oracle_on_random_specs() {
    for case in 0usize..12 {
        let (l, family, kind, traffic_kind, fault_kind) =
            (2 + case % 2, case % 4, (case / 2) % 4, case % 2, case % 3);
        let seed = (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 16;
        use ipgraph::sim::{FaultPlan, FaultSpec, SimConfig, Simulator, Traffic};
        let nuc = match kind {
            0 => NucleusSpec::hypercube(1),
            1 => NucleusSpec::hypercube(2),
            2 => NucleusSpec::complete(3),
            _ => NucleusSpec::ring(4),
        };
        let spec = super_family(family, l, nuc);
        if spec.expected_size().unwrap() <= 600 {
            let tn = TupleNetwork::from_spec(&spec).unwrap();
            let g = tn.build();
            let n = g.node_count() as u32;
            let traffic = match traffic_kind {
                0 => Traffic::Uniform,
                _ => Traffic::Hotspot {
                    fraction: 0.3,
                    target: n / 2,
                },
            };
            let cfg = SimConfig {
                injection_rate: 0.05,
                warmup_cycles: 40,
                measure_cycles: 120,
                drain_cycles: 240,
                seed,
                traffic,
                ..SimConfig::default()
            };
            let mut sim = Simulator::new(&g, |v| v / 4, &cfg);
            let fault = match fault_kind {
                0 => None,
                1 => Some(format!("script:node@60:{}", n / 2)),
                _ => Some("rate:links=0.02,at=90".to_string()),
            };
            if let Some(f) = fault {
                let fs = FaultSpec::parse(&f).unwrap();
                sim.set_fault_plan(Some(FaultPlan::compile(&fs, &g, seed ^ 0xfa17).unwrap()));
            }
            sim.set_dense(false);
            let sparse = sim.run(&cfg);
            sim.validate_sparse_state();
            sim.set_dense(true);
            let dense = sim.run(&cfg);
            sim.validate_sparse_state();
            assert_eq!(sparse, dense, "{}: sparse != dense oracle", spec.name);
        }
    }
}

/// Wormhole arm of the equivalence battery: stats (and deadlock
/// verdicts) must agree between the worklist sweep and the dense oracle
/// across families, traffic shapes, and fault campaigns.
#[test]
fn sparse_wormhole_matches_dense_oracle_on_random_specs() {
    for case in 0usize..8 {
        let (l, family, traffic_kind, faulted) =
            (2 + case % 2, case % 4, (case / 2) % 2, case % 3 == 0);
        let seed = (case as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9) >> 16;
        use ipgraph::sim::wormhole::{WormTraffic, WormholeConfig};
        use ipgraph::sim::{FaultPlan, FaultSpec, WormholeSim};
        let spec = super_family(family, l, NucleusSpec::hypercube(1 + family % 2));
        if spec.expected_size().unwrap() <= 600 {
            let tn = TupleNetwork::from_spec(&spec).unwrap();
            let g = tn.build();
            let n = g.node_count() as u32;
            let traffic = match traffic_kind {
                0 => WormTraffic::Uniform,
                // many-to-one onto the middle node (self-maps inject nothing)
                _ => {
                    WormTraffic::Fixed((0..n).map(|v| if v % 3 == 0 { n / 2 } else { v }).collect())
                }
            };
            let cfg = WormholeConfig {
                vcs: 8,
                injection_rate: 0.02,
                cycles: 800,
                seed,
                traffic,
                ..WormholeConfig::default()
            };
            let mut sim = WormholeSim::new(&g);
            if faulted {
                let fs = FaultSpec::parse("rate:links=0.02,at=200").unwrap();
                sim.set_fault_plan(Some(FaultPlan::compile(&fs, &g, seed ^ 0xfa17).unwrap()));
            }
            sim.set_dense(false);
            let sparse = sim.run(&cfg);
            sim.set_dense(true);
            let dense = sim.run(&cfg);
            match (sparse, dense) {
                (
                    ipgraph::sim::WormholeOutcome::Completed(s),
                    ipgraph::sim::WormholeOutcome::Completed(d),
                ) => {
                    assert_eq!(s.injected, d.injected, "{}", spec.name);
                    assert_eq!(s.delivered, d.delivered, "{}", spec.name);
                    assert_eq!(s.dropped, d.dropped, "{}", spec.name);
                    assert_eq!(s.avg_latency, d.avg_latency, "{}", spec.name);
                }
                (
                    ipgraph::sim::WormholeOutcome::Deadlocked {
                        at_cycle: ca,
                        stuck_packets: pa,
                    },
                    ipgraph::sim::WormholeOutcome::Deadlocked {
                        at_cycle: cb,
                        stuck_packets: pb,
                    },
                ) => assert_eq!((ca, pa), (cb, pb), "{}", spec.name),
                _ => panic!("{}: one mode deadlocked, the other completed", spec.name),
            }
        }
    }
}

/// Regression (DESIGN.md §13 activation invariant, fault event source):
/// a mid-run fault must re-activate exactly the right state — queues the
/// kill drained fall off the worklist, re-routed traffic re-populates
/// it — and the sparse run must stay byte-equal to the dense oracle
/// across the fault boundary, with the adaptive router still delivering.
#[test]
fn fault_reactivation_keeps_sparse_state_exact() {
    use ipgraph::sim::table::RoutingTable;
    use ipgraph::sim::{DetourRouter, FaultPlan, FaultSpec, SimConfig, Simulator, Traffic};
    let tn = hier::complete_cn(2, classic::hypercube(3), "Q3");
    let g = tn.build();
    let cfg = SimConfig {
        injection_rate: 0.04,
        warmup_cycles: 200,
        measure_cycles: 400,
        drain_cycles: 1_000,
        traffic: Traffic::Uniform,
        ..SimConfig::default()
    };
    let router = DetourRouter::new(RoutingTable::new(&g), g.clone()).unwrap();
    let mut sim = Simulator::with_router(router, &g, |v| v / 8, &cfg);
    // kill a node mid-measurement and a batch of links during drain
    let spec = FaultSpec::parse("script:node@300:5;rate:links=0.05,at=700").unwrap();
    sim.set_fault_plan(Some(FaultPlan::compile(&spec, &g, 0xfa17).unwrap()));
    sim.set_dense(false);
    let sparse = sim.run(&cfg);
    sim.validate_sparse_state();
    sim.set_dense(true);
    let dense = sim.run(&cfg);
    sim.validate_sparse_state();
    assert_eq!(sparse, dense, "fault campaign desynchronized the worklists");
    assert!(
        sparse.delivered > 0,
        "adaptive routing must keep delivering"
    );
}
