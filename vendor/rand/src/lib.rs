//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this vendored crate implements exactly the API surface the workspace
//! uses: [`rngs::SmallRng`] (xoshiro256++ seeded with SplitMix64, the same
//! generator family real `rand 0.8` uses for `SmallRng` on 64-bit
//! targets), [`SeedableRng::seed_from_u64`], and the [`Rng`] extension
//! methods `gen`, `gen_range`, and `gen_bool`.
//!
//! Determinism is the contract: given a seed, the stream of values is
//! fixed forever (simulation results and test expectations depend on it).
//! The streams are *not* guaranteed to be bit-identical to the real
//! `rand` crate's — only self-consistent.

use core::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from their full domain (the subset
/// of `rand`'s `Standard` distribution that the workspace uses).
pub trait Standard: Sized {
    /// Sample one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1) — the same construction real
        // rand uses for `Standard` f64.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Sample one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, bound)` by widening multiply (Lemire). Not
/// debiased — the bias is < 2⁻⁴⁰ for every bound in this workspace, far
/// below simulation noise.
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64 + 1;
                lo + uniform_below(rng, span) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample from the full domain of `T`.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from `range`.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// SplitMix64 step: expands a 64-bit seed into stream of well-mixed
    /// words (the standard xoshiro seeding procedure).
    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A small, fast, non-cryptographic RNG: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(5..17);
            assert!((5..17).contains(&v));
            let w: usize = rng.gen_range(0..=9);
            assert!(w <= 9);
        }
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
