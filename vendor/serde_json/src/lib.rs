//! Offline stand-in for `serde_json`.
//!
//! Prints and parses JSON over the vendored `serde` facade's
//! [`Value`](serde::Value) model. Implements the workspace's call-site
//! surface: [`to_string`], [`to_string_pretty`], [`from_str`]. The
//! output format matches real serde_json where the workspace can observe
//! it: 2-space pretty indentation, floats always printed with a decimal
//! point or exponent (shortest round-trip form), `u64`-precision integers.

use serde::{DeError, Deserialize, Serialize};
use std::fmt;

pub use serde::Value;

/// Serialization/deserialization error.
#[derive(Clone, Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Serialize to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to pretty JSON (2-space indentation).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse JSON and deserialize into `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

/// Parse JSON into a raw [`Value`].
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

// ------------------------------------------------------------------ writer

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

/// Floats print in Rust's shortest round-trip form, forced to contain a
/// `.` or exponent so they parse back as floats. Non-finite values become
/// `null` (JSON has no NaN/inf).
fn write_float(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    let s = format!("{f}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ------------------------------------------------------------------ parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // surrogate pair?
                            let c = if (0xd800..0xdc00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.eat(b'u')?;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("bad \\u escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // copy one UTF-8 scalar
                    let start = self.pos;
                    let rest = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let mut is_float = false;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("bad number"))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<u64>()
                .ok()
                .and_then(|_| text.parse::<i64>().ok())
                .map(Value::Int)
                .ok_or_else(|| self.err("bad number"))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| self.err("bad number"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string("hi\n").unwrap(), "\"hi\\n\"");
        let x: u64 = from_str("18446744073709551615").unwrap();
        assert_eq!(x, u64::MAX);
    }

    #[test]
    fn roundtrip_containers() {
        let v = vec![1u32, 2, 3];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,2,3]");
        let back: Vec<u32> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_format_matches_serde_json_style() {
        let v = vec![1u32, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn parses_nested_objects() {
        let v = parse_value(r#"{"a": [1, 2.5, "x"], "b": {"c": null}}"#).unwrap();
        assert_eq!(
            v.get("a").and_then(|a| match a {
                Value::Array(items) => Some(items.len()),
                _ => None,
            }),
            Some(3)
        );
        assert_eq!(v.get("b").and_then(|b| b.get("c")), Some(&Value::Null));
    }

    #[test]
    fn float_roundtrip_is_exact() {
        let xs = [0.1, 1.0 / 3.0, 1e-9, 123456.789, f64::MAX];
        for &x in &xs {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back, x, "{s}");
        }
    }
}
