//! Offline stand-in for `rayon` with a real multithreaded executor.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the subset of the rayon API the workspace uses — but unlike a
//! sequential facade, the combinators here actually fan work out across OS
//! threads.
//!
//! # Execution model
//!
//! Every parallel pipeline (`par_iter().map(..).filter(..)`) is a chain of
//! [`iter::Pipe`] stages over a materialized base of items. A terminal
//! operation (`reduce`, `collect`, `max`, …) splits the base index range into
//! a **fixed, thread-count-independent set of chunks** (see
//! [`pool::TARGET_CHUNKS`]), lets scoped worker threads claim chunks from a
//! shared atomic counter (dynamic self-scheduling — the idle-steal half of
//! work stealing without per-deque overhead), and then merges the per-chunk
//! results **in ascending chunk order** on the calling thread.
//!
//! # Determinism contract
//!
//! Because the chunk boundaries depend only on the input length and the merge
//! is always performed in chunk order, the result of every combinator is
//! **bit-for-bit identical for any worker count**, including floating-point
//! reductions whose round-off depends on association order. `IPG_THREADS=1`
//! and `IPG_THREADS=64` produce the same bytes; the schedule only decides
//! *which thread* computes a chunk, never *how results combine*.
//!
//! # Worker-count resolution
//!
//! [`current_num_threads`] resolves once per process, in order: the
//! `IPG_THREADS` environment variable (a positive integer), then
//! [`std::thread::available_parallelism`], then 1. With a resolved count of
//! 1 the terminal ops run inline on the caller with zero thread spawns —
//! exactly the old sequential behavior.
//!
//! # Extensions over the real rayon API
//!
//! [`pool::take_stats`] / [`pool::stats`] expose cumulative busy/wall time
//! of parallel regions so benchmarks can report per-phase effective
//! parallelism in run manifests. These are wall-clock measurements and must
//! never be written into deterministic metric dumps.

pub use pool::current_num_threads;

pub mod pool {
    //! Worker-count resolution, deterministic chunking, and the chunk
    //! self-scheduling executor shared by every terminal operation.

    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    use std::sync::OnceLock;
    use std::time::{Duration, Instant};

    /// Number of chunks a parallel operation is split into (inputs shorter
    /// than this become one chunk per item). Deliberately independent of the
    /// worker count so reduction trees — and therefore float round-off — are
    /// identical for every `IPG_THREADS` value.
    pub const TARGET_CHUNKS: usize = 64;

    static THREADS: OnceLock<usize> = OnceLock::new();

    /// The resolved worker count: `IPG_THREADS` if set to a positive
    /// integer, else the machine's available parallelism, else 1.
    /// Resolved once per process.
    pub fn current_num_threads() -> usize {
        *THREADS.get_or_init(|| match std::env::var("IPG_THREADS") {
            Ok(s) => match s.trim().parse::<usize>() {
                Ok(n) if n >= 1 => n,
                _ => default_threads(),
            },
            Err(_) => default_threads(),
        })
    }

    fn default_threads() -> usize {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    /// Split `0..len` into at most [`TARGET_CHUNKS`] contiguous ranges.
    /// Depends only on `len`.
    pub(crate) fn chunk_ranges(len: usize) -> Vec<(usize, usize)> {
        if len == 0 {
            return Vec::new();
        }
        let size = len.div_ceil(TARGET_CHUNKS).max(1);
        let mut out = Vec::with_capacity(len.div_ceil(size));
        let mut lo = 0;
        while lo < len {
            let hi = (lo + size).min(len);
            out.push((lo, hi));
            lo = hi;
        }
        out
    }

    // Cumulative pool statistics (wall-clock; never deterministic).
    static OPS: AtomicU64 = AtomicU64::new(0);
    static CHUNKS: AtomicU64 = AtomicU64::new(0);
    static BUSY_NANOS: AtomicU64 = AtomicU64::new(0);
    static WALL_NANOS: AtomicU64 = AtomicU64::new(0);

    /// Busy/wall accounting for parallel regions since the last
    /// [`take_stats`] (or process start).
    #[derive(Clone, Copy, Debug, Default, PartialEq)]
    pub struct PoolStats {
        /// Terminal operations executed.
        pub ops: u64,
        /// Chunks evaluated across those operations.
        pub chunks: u64,
        /// Sum of per-chunk evaluation time across all workers.
        pub busy_nanos: u64,
        /// Sum of caller-side wall time of the parallel regions.
        pub wall_nanos: u64,
    }

    impl PoolStats {
        /// Total in-chunk compute time in seconds.
        pub fn busy_secs(&self) -> f64 {
            self.busy_nanos as f64 / 1e9
        }

        /// Total wall time of the parallel regions in seconds.
        pub fn wall_secs(&self) -> f64 {
            self.wall_nanos as f64 / 1e9
        }

        /// Busy / wall ratio: the average number of chunks in flight.
        /// Equals the achieved speedup over one worker on dedicated
        /// cores; on an oversubscribed machine it reports occupancy
        /// (a descheduled worker's chunk clock keeps running). 1.0 when
        /// nothing ran.
        pub fn effective_parallelism(&self) -> f64 {
            if self.wall_nanos == 0 {
                1.0
            } else {
                self.busy_nanos as f64 / self.wall_nanos as f64
            }
        }
    }

    /// Read the cumulative stats without resetting them.
    pub fn stats() -> PoolStats {
        PoolStats {
            ops: OPS.load(Ordering::Relaxed),
            chunks: CHUNKS.load(Ordering::Relaxed),
            busy_nanos: BUSY_NANOS.load(Ordering::Relaxed),
            wall_nanos: WALL_NANOS.load(Ordering::Relaxed),
        }
    }

    /// Read and reset the stats — call at phase boundaries to attribute
    /// busy/wall time to a benchmark phase.
    pub fn take_stats() -> PoolStats {
        PoolStats {
            ops: OPS.swap(0, Ordering::Relaxed),
            chunks: CHUNKS.swap(0, Ordering::Relaxed),
            busy_nanos: BUSY_NANOS.swap(0, Ordering::Relaxed),
            wall_nanos: WALL_NANOS.swap(0, Ordering::Relaxed),
        }
    }

    fn timed<A>(eval: &(impl Fn(usize, usize) -> A + Sync), lo: usize, hi: usize) -> A {
        let t = Instant::now();
        let out = eval(lo, hi);
        BUSY_NANOS.fetch_add(as_nanos(t.elapsed()), Ordering::Relaxed);
        out
    }

    fn as_nanos(d: Duration) -> u64 {
        u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
    }

    /// Evaluate `eval` over the fixed chunking of `0..len` using the
    /// process worker count; results are returned in chunk order.
    pub(crate) fn execute<A, E>(len: usize, eval: E) -> Vec<A>
    where
        A: Send,
        E: Fn(usize, usize) -> A + Sync,
    {
        execute_with_workers(len, current_num_threads(), eval)
    }

    /// [`execute`] with an explicit worker count. The chunking — and hence
    /// the result — is identical for every `workers` value; only the
    /// schedule differs. Crate-visible so the vendor tests can exercise the
    /// threaded path even when the process default is one worker.
    pub(crate) fn execute_with_workers<A, E>(len: usize, workers: usize, eval: E) -> Vec<A>
    where
        A: Send,
        E: Fn(usize, usize) -> A + Sync,
    {
        let chunks = chunk_ranges(len);
        let workers = workers.min(chunks.len()).max(1);
        let op_start = Instant::now();
        let out: Vec<A> = if workers == 1 {
            // Inline path: no spawns, same chunk boundaries, same merge
            // order — byte-identical to the threaded path.
            chunks
                .iter()
                .map(|&(lo, hi)| timed(&eval, lo, hi))
                .collect()
        } else {
            let mut slots: Vec<Option<A>> = Vec::new();
            slots.resize_with(chunks.len(), || None);
            let next = AtomicUsize::new(0);
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        s.spawn(|| {
                            let mut local: Vec<(usize, A)> = Vec::new();
                            loop {
                                // Dynamic self-scheduling: idle workers claim
                                // the next unclaimed chunk.
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                if i >= chunks.len() {
                                    break;
                                }
                                let (lo, hi) = chunks[i];
                                local.push((i, timed(&eval, lo, hi)));
                            }
                            local
                        })
                    })
                    .collect();
                // Join everything before propagating a panic so no worker
                // outlives the unwinding caller.
                let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
                for h in handles {
                    match h.join() {
                        Ok(local) => {
                            for (i, a) in local {
                                slots[i] = Some(a);
                            }
                        }
                        Err(p) => {
                            if panic.is_none() {
                                panic = Some(p);
                            }
                        }
                    }
                }
                if let Some(p) = panic {
                    std::panic::resume_unwind(p);
                }
            });
            slots
                .into_iter()
                .map(|o| o.expect("every chunk claimed by exactly one worker"))
                .collect()
        };
        OPS.fetch_add(1, Ordering::Relaxed);
        CHUNKS.fetch_add(chunks.len() as u64, Ordering::Relaxed);
        WALL_NANOS.fetch_add(as_nanos(op_start.elapsed()), Ordering::Relaxed);
        out
    }
}

pub mod iter {
    //! The parallel-iterator combinators.

    use crate::pool;

    /// A pipeline stage over a materialized base: `drive` applies the whole
    /// map/filter chain to base indices `lo..hi`, feeding survivors to
    /// `sink` in base order. Driving by index range lets chunks share the
    /// stage closures by reference (`Fn + Sync`), so nothing is cloned per
    /// chunk.
    pub trait Pipe: Sync {
        /// Item type this stage emits.
        type Item: Send;

        /// Length of the underlying base.
        fn base_len(&self) -> usize;

        /// Evaluate base indices `lo..hi` through the chain, in order.
        fn drive(&self, lo: usize, hi: usize, sink: &mut dyn FnMut(Self::Item));
    }

    /// The materialized base of a pipeline: the source items, in order.
    pub struct VecBase<T> {
        items: Vec<T>,
    }

    impl<T> VecBase<T> {
        pub(crate) fn new(items: Vec<T>) -> Self {
            VecBase { items }
        }
    }

    impl<T: Clone + Send + Sync> Pipe for VecBase<T> {
        type Item = T;

        fn base_len(&self) -> usize {
            self.items.len()
        }

        fn drive(&self, lo: usize, hi: usize, sink: &mut dyn FnMut(T)) {
            for x in &self.items[lo..hi] {
                sink(x.clone());
            }
        }
    }

    /// The [`ParIter::map`] stage.
    pub struct Map<P, F> {
        inner: P,
        f: F,
    }

    impl<P, F, U> Pipe for Map<P, F>
    where
        P: Pipe,
        F: Fn(P::Item) -> U + Sync,
        U: Send,
    {
        type Item = U;

        fn base_len(&self) -> usize {
            self.inner.base_len()
        }

        fn drive(&self, lo: usize, hi: usize, sink: &mut dyn FnMut(U)) {
            self.inner.drive(lo, hi, &mut |x| sink((self.f)(x)));
        }
    }

    /// The [`ParIter::filter`] stage.
    pub struct Filter<P, F> {
        inner: P,
        f: F,
    }

    impl<P, F> Pipe for Filter<P, F>
    where
        P: Pipe,
        F: Fn(&P::Item) -> bool + Sync,
    {
        type Item = P::Item;

        fn base_len(&self) -> usize {
            self.inner.base_len()
        }

        fn drive(&self, lo: usize, hi: usize, sink: &mut dyn FnMut(P::Item)) {
            self.inner.drive(lo, hi, &mut |x| {
                if (self.f)(&x) {
                    sink(x);
                }
            });
        }
    }

    /// A parallel iterator: a [`Pipe`] chain awaiting a terminal operation.
    pub struct ParIter<P>(pub(crate) P);

    impl<P: Pipe> ParIter<P> {
        /// Fold every chunk with a locally created accumulator; chunk
        /// accumulators come back in chunk order.
        fn fold_chunks<A, M, S>(pipe: &P, make: M, step: S) -> Vec<A>
        where
            A: Send,
            M: Fn() -> A + Sync,
            S: Fn(&mut A, P::Item) + Sync,
        {
            pool::execute(pipe.base_len(), |lo, hi| {
                let mut acc = make();
                pipe.drive(lo, hi, &mut |x| step(&mut acc, x));
                acc
            })
        }

        /// Transform each element.
        pub fn map<U, F>(self, f: F) -> ParIter<Map<P, F>>
        where
            F: Fn(P::Item) -> U + Sync + Send,
            U: Send,
        {
            ParIter(Map { inner: self.0, f })
        }

        /// Keep elements satisfying the predicate.
        pub fn filter<F>(self, f: F) -> ParIter<Filter<P, F>>
        where
            F: Fn(&P::Item) -> bool + Sync + Send,
        {
            ParIter(Filter { inner: self.0, f })
        }

        /// Largest element. Ties resolve to the last maximal element,
        /// matching [`Iterator::max`].
        pub fn max(self) -> Option<P::Item>
        where
            P::Item: Ord,
        {
            let parts = Self::fold_chunks(
                &self.0,
                || None,
                |acc: &mut Option<P::Item>, x| {
                    if acc.as_ref().is_none_or(|a| x >= *a) {
                        *acc = Some(x);
                    }
                },
            );
            let mut best: Option<P::Item> = None;
            for part in parts.into_iter().flatten() {
                if best.as_ref().is_none_or(|b| part >= *b) {
                    best = Some(part);
                }
            }
            best
        }

        /// Smallest element. Ties resolve to the first minimal element,
        /// matching [`Iterator::min`].
        pub fn min(self) -> Option<P::Item>
        where
            P::Item: Ord,
        {
            let parts = Self::fold_chunks(
                &self.0,
                || None,
                |acc: &mut Option<P::Item>, x| {
                    if acc.as_ref().is_none_or(|a| x < *a) {
                        *acc = Some(x);
                    }
                },
            );
            let mut best: Option<P::Item> = None;
            for part in parts.into_iter().flatten() {
                if best.as_ref().is_none_or(|b| part < *b) {
                    best = Some(part);
                }
            }
            best
        }

        /// Sum the elements. Chunk partial sums combine in chunk order, so
        /// float sums are deterministic for any worker count.
        pub fn sum<S>(self) -> S
        where
            S: Send + std::iter::Sum<P::Item> + std::iter::Sum<S>,
        {
            let parts =
                Self::fold_chunks(&self.0, Vec::new, |acc: &mut Vec<P::Item>, x| acc.push(x));
            parts
                .into_iter()
                .map(|chunk| chunk.into_iter().sum::<S>())
                .sum()
        }

        /// Number of elements surviving the chain.
        pub fn count(self) -> usize {
            Self::fold_chunks(&self.0, || 0usize, |acc, _x| *acc += 1)
                .into_iter()
                .sum()
        }

        /// Collect into a container, preserving base order.
        pub fn collect<C>(self) -> C
        where
            C: FromIterator<P::Item>,
        {
            let parts =
                Self::fold_chunks(&self.0, Vec::new, |acc: &mut Vec<P::Item>, x| acc.push(x));
            parts.into_iter().flatten().collect()
        }

        /// Apply `f` to every element (chunks may run on different threads;
        /// `f` must therefore be `Sync`).
        pub fn for_each<F>(self, f: F)
        where
            F: Fn(P::Item) + Sync + Send,
        {
            let pipe = self.0;
            pool::execute(pipe.base_len(), |lo, hi| {
                pipe.drive(lo, hi, &mut |x| f(x));
            });
        }

        /// Reduce with an identity and an associative operation. Each chunk
        /// folds left from `identity()`; the chunk results then fold left in
        /// chunk order — for associative `op` this equals the sequential
        /// left fold, and for any `op` it is deterministic because the chunk
        /// tree depends only on the input length.
        pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> P::Item
        where
            ID: Fn() -> P::Item + Sync + Send,
            OP: Fn(P::Item, P::Item) -> P::Item + Sync + Send,
        {
            let pipe = self.0;
            let parts = pool::execute(pipe.base_len(), |lo, hi| {
                let mut acc = Some(identity());
                pipe.drive(lo, hi, &mut |x| {
                    let a = acc.take().expect("accumulator always present");
                    acc = Some(op(a, x));
                });
                acc.expect("accumulator always present")
            });
            parts.into_iter().fold(identity(), &op)
        }
    }

    impl<P, T> ParIter<P>
    where
        P: Pipe<Item = Option<T>>,
        T: Send,
    {
        /// Reduce `Option` elements, short-circuiting the result to `None`
        /// if any element (or any combination) is `None`. Chunk results
        /// merge in chunk order.
        pub fn try_reduce<ID, OP>(self, identity: ID, op: OP) -> Option<T>
        where
            ID: Fn() -> T + Sync + Send,
            OP: Fn(T, T) -> Option<T> + Sync + Send,
        {
            let pipe = self.0;
            let parts = pool::execute(pipe.base_len(), |lo, hi| {
                let mut acc = Some(identity());
                pipe.drive(lo, hi, &mut |item| {
                    acc = match (acc.take(), item) {
                        (Some(a), Some(x)) => op(a, x),
                        _ => None,
                    };
                });
                acc
            });
            let mut total = identity();
            for part in parts {
                total = op(total, part?)?;
            }
            Some(total)
        }
    }

    /// Conversion into a parallel iterator by value.
    pub trait IntoParallelIterator {
        /// Element type.
        type Item: Send;
        /// Base pipe type.
        type Pipe: Pipe<Item = Self::Item>;

        /// Materialize into a parallel iterator.
        fn into_par_iter(self) -> ParIter<Self::Pipe>;
    }

    impl<T> IntoParallelIterator for T
    where
        T: IntoIterator,
        T::Item: Clone + Send + Sync,
    {
        type Item = T::Item;
        type Pipe = VecBase<T::Item>;

        fn into_par_iter(self) -> ParIter<VecBase<T::Item>> {
            ParIter(VecBase::new(self.into_iter().collect()))
        }
    }

    /// Conversion into a parallel iterator over references, mirroring
    /// `rayon`'s `par_iter()` on slices, `Vec`s, etc.
    pub trait IntoParallelRefIterator<'data> {
        /// Element type (typically `&'data T`).
        type Item: Send + 'data;
        /// Base pipe type.
        type Pipe: Pipe<Item = Self::Item>;

        /// Materialize a parallel iterator borrowing from `self`.
        fn par_iter(&'data self) -> ParIter<Self::Pipe>;
    }

    impl<'data, C: ?Sized + 'data> IntoParallelRefIterator<'data> for C
    where
        &'data C: IntoIterator,
        <&'data C as IntoIterator>::Item: Clone + Send + Sync,
    {
        type Item = <&'data C as IntoIterator>::Item;
        type Pipe = VecBase<Self::Item>;

        fn par_iter(&'data self) -> ParIter<VecBase<Self::Item>> {
            ParIter(VecBase::new(self.into_iter().collect()))
        }
    }
}

pub mod slice {
    //! In-place parallel mutation over a slice.
    //!
    //! The pipeline combinators in [`crate::iter`] materialize owned items,
    //! which rules out mutating a borrowed slice in parallel (real rayon's
    //! `par_iter_mut`). This module fills that gap with a single primitive:
    //! each element is touched by exactly one chunk, chunk boundaries depend
    //! only on the slice length, and the closure observes elements through
    //! `&mut T` — so the post-state of the slice is independent of the
    //! worker count whenever `f` itself is deterministic per element.

    use crate::pool;

    /// Wrapper making a raw slice pointer `Sync` so chunk workers can share
    /// it. Soundness: [`pool::execute`]'s chunk ranges partition `0..len`
    /// into disjoint intervals and each chunk is claimed by exactly one
    /// worker, so no element is aliased by two `&mut` borrows.
    struct SlicePtr<T>(*mut T);
    unsafe impl<T: Send> Sync for SlicePtr<T> {}

    /// Apply `f(index, &mut item)` to every element, fanning chunks out
    /// across the pool. Equivalent to a sequential indexed `iter_mut` loop
    /// for any worker count.
    pub fn par_for_each_mut<T, F>(items: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize, &mut T) + Sync,
    {
        let base = SlicePtr(items.as_mut_ptr());
        let base = &base;
        pool::execute(items.len(), move |lo, hi| {
            for i in lo..hi {
                // SAFETY: `i` lies in this chunk's half-open range; chunks
                // are disjoint and cover 0..len exactly once (see
                // `pool::chunk_ranges`), so this is the only live borrow
                // of element `i`.
                let item = unsafe { &mut *base.0.add(i) };
                f(i, item);
            }
        });
    }
}

pub mod prelude {
    //! Glob-import surface matching `rayon::prelude::*` for the subset the
    //! workspace uses.
    pub use crate::iter::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
    pub use crate::slice::par_for_each_mut;
}

#[cfg(test)]
mod tests {
    use super::pool;
    use super::prelude::*;

    #[test]
    fn map_reduce_matches_sequential() {
        let xs: Vec<u64> = (0..1000).collect();
        let par: u64 = xs
            .clone()
            .into_par_iter()
            .map(|x| x * 3)
            .reduce(|| 0, |a, b| a + b);
        let seq: u64 = xs.iter().map(|x| x * 3).sum();
        assert_eq!(par, seq);
    }

    #[test]
    fn par_iter_on_slices() {
        let xs = [5u32, 1, 9, 3];
        let m = xs.par_iter().map(|&x| x).max();
        assert_eq!(m, Some(9));
        let mn = xs.par_iter().map(|&x| x).min();
        assert_eq!(mn, Some(1));
    }

    #[test]
    fn try_reduce_short_circuits() {
        let xs: Vec<Option<u32>> = vec![Some(1), Some(2), None, Some(4)];
        let r = xs.into_par_iter().try_reduce(|| 0, |a, b| Some(a + b));
        assert_eq!(r, None);
        let ys: Vec<Option<u32>> = vec![Some(1), Some(2), Some(4)];
        let r = ys.into_par_iter().try_reduce(|| 0, |a, b| Some(a + b));
        assert_eq!(r, Some(7));
    }

    #[test]
    fn filter_count_collect_preserve_order() {
        let xs: Vec<u32> = (0..10_000).collect();
        let evens: Vec<u32> = xs.clone().into_par_iter().filter(|x| x % 2 == 0).collect();
        let expect: Vec<u32> = (0..10_000).filter(|x| x % 2 == 0).collect();
        assert_eq!(evens, expect);
        let n = xs.into_par_iter().filter(|x| x % 7 == 0).count();
        assert_eq!(n, (0..10_000).filter(|x| x % 7 == 0).count());
    }

    #[test]
    fn chunk_ranges_cover_exactly_and_depend_only_on_len() {
        for len in [0usize, 1, 5, 63, 64, 65, 1000, 4096] {
            let chunks = pool::chunk_ranges(len);
            assert!(chunks.len() <= pool::TARGET_CHUNKS);
            let mut expect_lo = 0;
            for &(lo, hi) in &chunks {
                assert_eq!(lo, expect_lo);
                assert!(hi > lo);
                expect_lo = hi;
            }
            assert_eq!(expect_lo, len);
            assert_eq!(chunks, pool::chunk_ranges(len));
        }
    }

    #[test]
    fn threaded_result_is_bit_identical_to_inline() {
        // Float sums whose value depends on association order: the fixed
        // chunk tree must make every worker count agree bit-for-bit.
        let n = 10_000usize;
        let eval = |lo: usize, hi: usize| -> f64 { (lo..hi).map(|i| 1.0 / (i as f64 + 1.0)).sum() };
        let combine = |parts: Vec<f64>| parts.into_iter().fold(0.0f64, |a, b| a + b);
        let seq = combine(pool::execute_with_workers(n, 1, eval));
        for workers in [2, 3, 4, 8] {
            let par = combine(pool::execute_with_workers(n, workers, eval));
            assert_eq!(seq.to_bits(), par.to_bits(), "workers={workers}");
        }
    }

    #[test]
    fn workers_run_concurrently() {
        // Two chunks, two workers, a two-party barrier inside the chunk
        // body: the test can only pass (and not deadlock) if two distinct
        // threads evaluate chunks at the same time.
        use std::sync::Barrier;
        let barrier = Barrier::new(2);
        let ids = pool::execute_with_workers(2, 2, |lo, _hi| {
            barrier.wait();
            (lo, std::thread::current().id())
        });
        assert_eq!(ids.len(), 2);
        assert_ne!(ids[0].1, ids[1].1, "chunks ran on the same thread");
        assert_eq!((ids[0].0, ids[1].0), (0, 1), "merge order broken");
    }

    #[test]
    fn max_tie_resolution_matches_iterator() {
        // Keyed items that compare equal but carry a distinguishing payload:
        // Iterator::max keeps the *last* maximal element, Iterator::min the
        // *first* minimal one. The parallel versions must agree.
        #[derive(Clone, Copy, Debug)]
        struct Keyed {
            key: u32,
            payload: usize,
        }
        impl PartialEq for Keyed {
            fn eq(&self, other: &Self) -> bool {
                self.key == other.key
            }
        }
        impl Eq for Keyed {}
        impl PartialOrd for Keyed {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Keyed {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.key.cmp(&other.key)
            }
        }
        let xs: Vec<Keyed> = (0..500)
            .map(|i| Keyed {
                key: i % 5,
                payload: i as usize,
            })
            .collect();
        let par_max = xs.clone().into_par_iter().max().unwrap();
        let seq_max = xs.iter().copied().max().unwrap();
        assert_eq!(par_max.payload, seq_max.payload, "max must keep last tie");
        let par_min = xs.clone().into_par_iter().min().unwrap();
        let seq_min = xs.iter().copied().min().unwrap();
        assert_eq!(par_min.payload, seq_min.payload, "min must keep first tie");
    }

    #[test]
    fn stats_accumulate_busy_and_wall() {
        let _ = pool::take_stats();
        let s: u64 = (0..50_000u64).into_par_iter().map(|x| x % 17).sum();
        assert_eq!(s, (0..50_000u64).map(|x| x % 17).sum::<u64>());
        let st = pool::stats();
        assert!(st.ops >= 1);
        assert!(st.chunks >= 1);
        assert!(st.effective_parallelism() > 0.0);
    }

    #[test]
    fn empty_inputs() {
        let xs: Vec<u32> = Vec::new();
        assert_eq!(xs.clone().into_par_iter().max(), None);
        assert_eq!(xs.clone().into_par_iter().count(), 0);
        let v: Vec<u32> = xs.clone().into_par_iter().collect();
        assert!(v.is_empty());
        assert_eq!(xs.into_par_iter().reduce(|| 7, |a, b| a + b), 7);
    }

    #[test]
    fn for_each_visits_everything() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let total = AtomicU64::new(0);
        (1..=1000u64).into_par_iter().for_each(|x| {
            total.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 500_500);
    }

    #[test]
    fn par_for_each_mut_touches_each_element_exactly_once() {
        let mut xs: Vec<u64> = (0..10_000).collect();
        crate::slice::par_for_each_mut(&mut xs, |i, x| {
            assert_eq!(*x, i as u64);
            *x = *x * 2 + 1;
        });
        for (i, x) in xs.iter().enumerate() {
            assert_eq!(*x, i as u64 * 2 + 1);
        }
        // Empty and single-element slices take the inline path.
        let mut empty: Vec<u64> = Vec::new();
        crate::slice::par_for_each_mut(&mut empty, |_, _| unreachable!());
        let mut one = [41u64];
        crate::slice::par_for_each_mut(&mut one, |_, x| *x += 1);
        assert_eq!(one[0], 42);
    }

    #[test]
    fn par_for_each_mut_with_unequal_chunk_costs() {
        // Skewed per-element work exercises dynamic self-scheduling while
        // the final state stays a pure function of the input.
        let mut xs: Vec<u64> = (0..512).collect();
        crate::slice::par_for_each_mut(&mut xs, |i, x| {
            let spins = if i % 64 == 0 { 10_000 } else { 10 };
            let mut acc = *x;
            for _ in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            *x = acc;
        });
        let expect: Vec<u64> = (0..512u64)
            .map(|i| {
                let spins = if i % 64 == 0 { 10_000 } else { 10 };
                let mut acc = i;
                for _ in 0..spins {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
                }
                acc
            })
            .collect();
        assert_eq!(xs, expect);
    }
}
