//! Offline stand-in for `rayon`.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the combinators the workspace actually uses —
//! `into_par_iter` / `par_iter`, `map`, `max`, `collect`,
//! `reduce(identity, op)`, `try_reduce(identity, op)` — with rayon's
//! *semantics* but a sequential execution model. Sequential execution is a
//! feature here: results are bit-for-bit deterministic and the reduction
//! order is fixed, which the determinism tests rely on. Swapping the real
//! rayon back in requires no source changes.

pub mod iter {
    /// The sequential stand-in for rayon's `ParallelIterator`.
    pub struct ParIter<I: Iterator>(pub(crate) I);

    impl<I: Iterator> ParIter<I> {
        /// Map each item.
        #[inline]
        pub fn map<U, F>(self, f: F) -> ParIter<std::iter::Map<I, F>>
        where
            F: FnMut(I::Item) -> U,
        {
            ParIter(self.0.map(f))
        }

        /// Keep items matching the predicate.
        #[inline]
        pub fn filter<F>(self, f: F) -> ParIter<std::iter::Filter<I, F>>
        where
            F: FnMut(&I::Item) -> bool,
        {
            ParIter(self.0.filter(f))
        }

        /// Largest item.
        #[inline]
        pub fn max(self) -> Option<I::Item>
        where
            I::Item: Ord,
        {
            self.0.max()
        }

        /// Smallest item.
        #[inline]
        pub fn min(self) -> Option<I::Item>
        where
            I::Item: Ord,
        {
            self.0.min()
        }

        /// Sum of all items.
        #[inline]
        pub fn sum<S>(self) -> S
        where
            S: std::iter::Sum<I::Item>,
        {
            self.0.sum()
        }

        /// Count the items.
        #[inline]
        pub fn count(self) -> usize {
            self.0.count()
        }

        /// Collect into any `FromIterator` collection.
        #[inline]
        pub fn collect<C>(self) -> C
        where
            C: FromIterator<I::Item>,
        {
            self.0.collect()
        }

        /// Run `f` on every item.
        #[inline]
        pub fn for_each<F>(self, f: F)
        where
            F: FnMut(I::Item),
        {
            self.0.for_each(f)
        }

        /// Rayon-style reduce: fold from `identity()` with `op`.
        #[inline]
        pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
        where
            ID: Fn() -> I::Item,
            OP: Fn(I::Item, I::Item) -> I::Item,
        {
            self.0.fold(identity(), op)
        }
    }

    impl<I, T> ParIter<I>
    where
        I: Iterator<Item = Option<T>>,
    {
        /// Rayon-style `try_reduce` over `Option` items: `None`
        /// short-circuits; `Some` values fold from `identity()` with `op`.
        #[inline]
        pub fn try_reduce<ID, OP>(self, identity: ID, op: OP) -> Option<T>
        where
            ID: Fn() -> T,
            OP: Fn(T, T) -> Option<T>,
        {
            let mut acc = identity();
            for item in self.0 {
                acc = op(acc, item?)?;
            }
            Some(acc)
        }
    }

    /// By-value conversion into a (stand-in) parallel iterator.
    pub trait IntoParallelIterator: IntoIterator + Sized {
        /// Consume `self` into a parallel iterator.
        #[inline]
        fn into_par_iter(self) -> ParIter<Self::IntoIter> {
            ParIter(self.into_iter())
        }
    }

    impl<T: IntoIterator> IntoParallelIterator for T {}

    /// By-reference conversion into a (stand-in) parallel iterator.
    pub trait IntoParallelRefIterator<'data> {
        /// The underlying sequential iterator.
        type Iter: Iterator;
        /// Iterate `&self` in parallel.
        fn par_iter(&'data self) -> ParIter<Self::Iter>;
    }

    impl<'data, C: ?Sized + 'data> IntoParallelRefIterator<'data> for C
    where
        &'data C: IntoIterator,
    {
        type Iter = <&'data C as IntoIterator>::IntoIter;

        #[inline]
        fn par_iter(&'data self) -> ParIter<Self::Iter> {
            ParIter(self.into_iter())
        }
    }
}

pub mod prelude {
    //! Glob-import surface matching `rayon::prelude::*`.
    pub use crate::iter::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_reduce_matches_sequential() {
        let (sum, cnt) = (0..100u32)
            .into_par_iter()
            .map(|x| (x as u64, 1u64))
            .reduce(|| (0, 0), |a, b| (a.0 + b.0, a.1 + b.1));
        assert_eq!(sum, 4950);
        assert_eq!(cnt, 100);
    }

    #[test]
    fn par_iter_on_slices() {
        let v = vec![3u32, 1, 4, 1, 5];
        assert_eq!(v.par_iter().map(|&x| x).max(), Some(5));
        let doubled: Vec<u32> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![6, 2, 8, 2, 10]);
    }

    #[test]
    fn try_reduce_short_circuits() {
        let ok = vec![Some(1u32), Some(2), Some(3)];
        assert_eq!(
            ok.into_par_iter().try_reduce(|| 0, |a, b| Some(a.max(b))),
            Some(3)
        );
        let bad = vec![Some(1u32), None, Some(3)];
        assert_eq!(
            bad.into_par_iter().try_reduce(|| 0, |a, b| Some(a.max(b))),
            None
        );
    }
}
