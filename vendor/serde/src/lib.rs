//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements a compact serialization framework with the same
//! *call-site* API the workspace uses: `#[derive(Serialize, Deserialize)]`
//! (via the sibling `serde_derive` stand-in) and trait bounds
//! `T: Serialize` / `T: Deserialize`.
//!
//! The data model is a JSON-shaped [`Value`] tree rather than real serde's
//! visitor architecture: [`Serialize`] renders a value into a [`Value`],
//! [`Deserialize`] rebuilds one from it. The sibling `serde_json`
//! stand-in prints and parses that tree. The derive encodes structs as
//! objects, newtype structs transparently, unit enum variants as strings,
//! and data-carrying variants as single-key objects — the same layout
//! real serde produces, so the JSON artifacts under `results/` keep their
//! shape.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// A JSON-shaped value tree: the intermediate data model.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Signed integer (only produced for negative values).
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating point.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object; insertion order is preserved (field order of the struct).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up a field of an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Look up a required field of an object, with a derive-friendly error.
    pub fn field(&self, key: &str) -> Result<&Value, DeError> {
        self.get(key)
            .ok_or_else(|| DeError(format!("missing field `{key}`")))
    }

    /// Short type name for error messages.
    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error.
#[derive(Clone, Debug)]
pub struct DeError(pub String);

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

impl DeError {
    /// "expected X, found Y"-style error.
    pub fn expected(what: &str, found: &Value) -> DeError {
        DeError(format!("expected {what}, found {}", found.kind()))
    }
}

/// Render `self` into the [`Value`] data model.
pub trait Serialize {
    /// Convert to a value tree.
    fn to_value(&self) -> Value;
}

/// Rebuild `Self` from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Convert from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------- scalars

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = match *v {
                    Value::UInt(u) => u,
                    Value::Int(i) if i >= 0 => i as u64,
                    Value::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                        f as u64
                    }
                    ref other => return Err(DeError::expected("unsigned integer", other)),
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 { Value::UInt(i as u64) } else { Value::Int(i) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = match *v {
                    Value::Int(i) => i,
                    Value::UInt(u) if u <= i64::MAX as u64 => u as i64,
                    Value::Float(f) if f.fract() == 0.0 && f.abs() < 2e18 => f as i64,
                    ref other => return Err(DeError::expected("integer", other)),
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match *v {
            Value::Float(f) => Ok(f),
            Value::Int(i) => Ok(i as f64),
            Value::UInt(u) => Ok(u as f64),
            ref other => Err(DeError::expected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match *v {
            Value::Bool(b) => Ok(b),
            ref other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::expected("single-char string", other)),
        }
    }
}

// ------------------------------------------------------------- containers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<[T]> {
    fn to_value(&self) -> Value {
        self[..].to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<[T]> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Vec::<T>::from_value(v).map(Vec::into_boxed_slice)
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(DeError::expected("2-element array", other)),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError::expected("object", other)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
