//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against
//! the vendored `serde` facade (a JSON-`Value`-based data model). The
//! input item is parsed directly from the `proc_macro` token stream — the
//! build environment has no crates.io access, so `syn`/`quote` are not
//! available.
//!
//! Supported shapes (everything this workspace derives):
//! - structs with named fields → JSON objects in field order;
//! - newtype structs → transparent (the inner value's encoding);
//! - tuple structs of arity ≥ 2 → JSON arrays;
//! - unit structs → `null`;
//! - enums with unit variants → the variant name as a string;
//! - enums with tuple/struct variants → `{"Variant": payload}`.
//!
//! Not supported (panics with a clear message): generic types and
//! `#[serde(...)]` attributes.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Parse the derived item into its name and shape.
fn parse_item(input: TokenStream) -> (String, Shape) {
    let trees: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // skip outer attributes and visibility
    loop {
        match trees.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = trees.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }

    let kw = match trees.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match trees.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = trees.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive (vendored): generic type `{name}` is not supported");
        }
    }

    match kw.as_str() {
        "struct" => match trees.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                (name, Shape::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                (name, Shape::Tuple(count_tuple_fields(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => (name, Shape::Unit),
            other => panic!("serde_derive: unexpected struct body {other:?}"),
        },
        "enum" => match trees.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                (name, Shape::Enum(parse_variants(g.stream())))
            }
            other => panic!("serde_derive: unexpected enum body {other:?}"),
        },
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

/// Split a token stream on top-level commas (commas inside `<...>` type
/// arguments don't count; bracketed groups are single trees already).
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out: Vec<Vec<TokenTree>> = vec![Vec::new()];
    let mut angle_depth = 0i32;
    for tree in stream {
        match &tree {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                out.push(Vec::new());
                continue;
            }
            _ => {}
        }
        out.last_mut().unwrap().push(tree);
    }
    if out.last().map(Vec::is_empty) == Some(true) {
        out.pop();
    }
    out
}

/// Strip leading attributes and visibility from a field/variant chunk.
fn strip_attrs_and_vis(chunk: &[TokenTree]) -> &[TokenTree] {
    let mut i = 0;
    loop {
        match chunk.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = chunk.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return &chunk[i..],
        }
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    split_top_level(stream)
        .iter()
        .map(|chunk| {
            let chunk = strip_attrs_and_vis(chunk);
            match chunk.first() {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("serde_derive: expected field name, got {other:?}"),
            }
        })
        .collect()
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_top_level(stream).len()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_top_level(stream)
        .iter()
        .map(|chunk| {
            let chunk = strip_attrs_and_vis(chunk);
            let name = match chunk.first() {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("serde_derive: expected variant name, got {other:?}"),
            };
            let kind = match chunk.get(1) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    VariantKind::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantKind::Named(parse_named_fields(g.stream()))
                }
                None => VariantKind::Unit,
                other => panic!("serde_derive: unexpected variant body {other:?}"),
            };
            Variant { name, kind }
        })
        .collect()
}

// ------------------------------------------------------------------ codegen

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    let body = match &shape {
        Shape::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "::serde::Value::Object(::std::vec::Vec::from([{}]))",
                entries.join(", ")
            )
        }
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!(
                "::serde::Value::Array(::std::vec::Vec::from([{}]))",
                items.join(", ")
            )
        }
        Shape::Unit => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(\
                             ::std::string::String::from(\"{vn}\")),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binders: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let payload = if *n == 1 {
                                "::serde::Serialize::to_value(f0)".to_string()
                            } else {
                                let items: Vec<String> = binders
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect();
                                format!(
                                    "::serde::Value::Array(::std::vec::Vec::from([{}]))",
                                    items.join(", ")
                                )
                            };
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Object(\
                                 ::std::vec::Vec::from([(::std::string::String::from(\
                                 \"{vn}\"), {payload})])),",
                                binders.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {} }} => ::serde::Value::Object(\
                                 ::std::vec::Vec::from([(::std::string::String::from(\
                                 \"{vn}\"), ::serde::Value::Object(::std::vec::Vec::from(\
                                 [{}])))])),",
                                fields.join(", "),
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive: generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    let body = match &shape {
        Shape::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value(v.field(\"{f}\")?)?,"))
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                inits.join(" ")
            )
        }
        Shape::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "match v {{\n\
                 ::serde::Value::Array(items) if items.len() == {n} => \
                 ::std::result::Result::Ok({name}({})),\n\
                 other => ::std::result::Result::Err(\
                 ::serde::DeError::expected(\"{n}-element array\", other)),\n\
                 }}",
                items.join(", ")
            )
        }
        Shape::Unit => format!(
            "match v {{\n\
             ::serde::Value::Null => ::std::result::Result::Ok({name}),\n\
             other => ::std::result::Result::Err(\
             ::serde::DeError::expected(\"null\", other)),\n\
             }}"
        ),
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),",
                        vn = v.name
                    )
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                             ::serde::Deserialize::from_value(payload)?)),"
                        )),
                        VariantKind::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => match payload {{\n\
                                 ::serde::Value::Array(items) if items.len() == {n} => \
                                 ::std::result::Result::Ok({name}::{vn}({})),\n\
                                 other => ::std::result::Result::Err(\
                                 ::serde::DeError::expected(\"{n}-element array\", other)),\n\
                                 }},",
                                items.join(", ")
                            ))
                        }
                        VariantKind::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(\
                                         payload.field(\"{f}\")?)?,"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => ::std::result::Result::Ok({name}::{vn} \
                                 {{ {} }}),",
                                inits.join(" ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match v {{\n\
                 ::serde::Value::Str(s) => match s.as_str() {{\n\
                 {units}\n\
                 other => ::std::result::Result::Err(::serde::DeError(\
                 ::std::format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                 }},\n\
                 ::serde::Value::Object(fields) if fields.len() == 1 => {{\n\
                 let (key, payload) = &fields[0];\n\
                 let _ = payload;\n\
                 match key.as_str() {{\n\
                 {data}\n\
                 other => ::std::result::Result::Err(::serde::DeError(\
                 ::std::format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                 }}\n\
                 }},\n\
                 other => ::std::result::Result::Err(\
                 ::serde::DeError::expected(\"{name} variant\", other)),\n\
                 }}",
                units = unit_arms.join("\n"),
                data = data_arms.join("\n"),
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive: generated Deserialize impl must parse")
}
