//! Offline stand-in for `proptest`.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements the subset of proptest the workspace's property tests
//! use: the [`Strategy`] trait (with `prop_map` and `prop_perturb`),
//! integer-range and tuple strategies, [`Just`], `collection::vec`, and
//! the [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Differences from real proptest, deliberate for this environment:
//! cases are generated from a *deterministic* per-test seed (the hash of
//! the test name), so failures reproduce without a persistence file, and
//! there is no shrinking — the failing inputs are printed instead. Case
//! count defaults to 64 and can be raised with `PROPTEST_CASES`.

use rand::rngs::SmallRng;
pub use rand::RngCore;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// The RNG handed to strategies and `prop_perturb` closures.
#[derive(Clone, Debug)]
pub struct TestRng(SmallRng);

impl TestRng {
    /// Deterministic RNG from a test-name seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng(SmallRng::seed_from_u64(seed))
    }

    /// Derive an independent child RNG (for by-value closure arguments).
    pub fn fork(&mut self) -> TestRng {
        TestRng::from_seed(self.0.next_u64())
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// FNV-1a hash of the test name: the per-test deterministic seed.
pub fn seed_for(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Number of cases per property (default 64; override with
/// `PROPTEST_CASES`).
pub fn case_count() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64)
}

/// A generator of test-case values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Transform generated values with access to a private RNG.
    fn prop_perturb<U, F>(self, f: F) -> Perturb<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value, TestRng) -> U,
    {
        Perturb { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn gen_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// The [`Strategy::prop_perturb`] adapter.
pub struct Perturb<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value, TestRng) -> U> Strategy for Perturb<S, F> {
    type Value = U;

    fn gen_value(&self, rng: &mut TestRng) -> U {
        let v = self.inner.gen_value(rng);
        (self.f)(v, rng.fork())
    }
}

/// Always yields a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Size specification for [`vec`]: an exact length or a half-open
    /// range of lengths.
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The [`vec`] strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 == self.size.hi {
                self.size.lo
            } else {
                rng.0.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude::*`.
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, RngCore, Strategy, TestRng,
    };
}

/// Define property tests: each `fn name(arg in strategy, ...)` block runs
/// [`case_count`] times with deterministically generated inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::TestRng::from_seed($crate::seed_for(stringify!($name)));
                for case in 0..$crate::case_count() {
                    $(let $arg = $crate::Strategy::gen_value(&($strat), &mut rng);)+
                    // The body gets clones so the originals survive for the
                    // failure report below.
                    let result = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| {
                            $(let $arg = ::std::clone::Clone::clone(&$arg);)+
                            $body
                        }),
                    );
                    if let Err(payload) = result {
                        eprintln!(
                            "proptest case {} of {} failed with inputs:",
                            case + 1,
                            stringify!($name),
                        );
                        $(eprintln!("  {} = {:?}", stringify!($arg), $arg);)+
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )+
    };
}

/// Assert a condition inside a property (panics with the rendered
/// condition on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 0usize..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn maps_apply(v in crate::collection::vec(0u8..10, 1..6)) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert!(v.iter().all(|&b| b < 10));
        }

        #[test]
        fn perturb_gets_private_rng(x in Just(7u32).prop_perturb(|x, mut rng| {
            (x, rng.next_u32())
        })) {
            prop_assert_eq!(x.0, 7);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::from_seed(crate::seed_for("t"));
        let mut b = TestRng::from_seed(crate::seed_for("t"));
        let s = 0u32..1000;
        for _ in 0..50 {
            assert_eq!(s.gen_value(&mut a), s.gen_value(&mut b));
        }
    }
}
