//! Offline stand-in for `criterion`.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements the subset of criterion the workspace's benches use:
//! [`Criterion::benchmark_group`], `sample_size`, `bench_function`,
//! [`Bencher::iter`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros. Instead of criterion's statistical analysis it runs a short
//! warm-up, times `sample_size` batches, and prints min/median/mean
//! per-iteration wall-clock times.
//!
//! When the `CRITERION_JSON` environment variable names a file, every
//! finished benchmark additionally appends one JSON object per line
//! (`{"group", "id", "median_ns", "min_ns", "mean_ns", "samples",
//! "iters"}`) to it, so runner scripts can collect machine-readable
//! results without parsing stdout.

use std::io::Write;
// ipg-analyze: allow(DET003) reason="bench harness: measuring wall time is its purpose"
use std::time::{Duration, Instant};

/// Benchmark driver; create one per `criterion_group!` function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Match real criterion's builder API; CLI filtering is not supported,
    /// so this is the identity.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 30,
        }
    }
}

/// A named group of benchmarks sharing a sample-size setting.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run and report one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };

        // Warm-up and calibration: find an iteration count where one
        // sample takes roughly WALL_PER_SAMPLE, so fast closures are
        // batched and slow ones run once per sample.
        const WALL_PER_SAMPLE: Duration = Duration::from_millis(20);
        loop {
            b.elapsed = Duration::ZERO;
            f(&mut b);
            if b.elapsed >= WALL_PER_SAMPLE || b.iters >= 1 << 20 {
                break;
            }
            let grow = if b.elapsed.is_zero() {
                16
            } else {
                (WALL_PER_SAMPLE.as_nanos() / b.elapsed.as_nanos().max(1)).clamp(2, 16) as u64
            };
            b.iters = (b.iters * grow).min(1 << 20);
        }

        let mut per_iter: Vec<f64> = (0..self.sample_size)
            .map(|_| {
                b.elapsed = Duration::ZERO;
                f(&mut b);
                b.elapsed.as_secs_f64() / b.iters as f64
            })
            .collect();
        per_iter.sort_by(|x, y| x.total_cmp(y));

        let min = per_iter[0];
        let median = per_iter[per_iter.len() / 2];
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        println!(
            "{}/{id:<40} min {:>12}  median {:>12}  mean {:>12}  ({} samples x {} iters)",
            self.name,
            fmt_time(min),
            fmt_time(median),
            fmt_time(mean),
            per_iter.len(),
            b.iters,
        );
        emit_json(&self.name, &id, min, median, mean, per_iter.len(), b.iters);
        self
    }

    /// End the group (criterion requires this before reuse).
    pub fn finish(self) {}
}

/// Passed to the closure given to `bench_function`; times the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, running it the calibrated number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // ipg-analyze: allow(DET003) reason="bench harness: measuring wall time is its purpose"
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Append one result line to the `CRITERION_JSON` file, if set. The JSON
/// is hand-formatted (this crate has no serde); group/id strings are
/// benchmark identifiers from our own benches, escaped minimally.
fn emit_json(group: &str, id: &str, min: f64, median: f64, mean: f64, samples: usize, iters: u64) {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
    let line = format!(
        "{{\"group\":\"{}\",\"id\":\"{}\",\"median_ns\":{:.1},\"min_ns\":{:.1},\"mean_ns\":{:.1},\"samples\":{},\"iters\":{}}}\n",
        esc(group),
        esc(id),
        median * 1e9,
        min * 1e9,
        mean * 1e9,
        samples,
        iters,
    );
    let res = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| f.write_all(line.as_bytes()));
    if let Err(e) = res {
        eprintln!("criterion: cannot append to CRITERION_JSON={path}: {e}");
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Re-export spot for code that uses `criterion::black_box`.
pub use std::hint::black_box;

/// Define a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
}

/// Define `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(2);
        let mut calls = 0u64;
        g.bench_function("noop", |b| b.iter(|| calls += 1));
        g.finish();
        assert!(calls > 0);
    }

    #[test]
    fn fmt_time_units() {
        assert!(fmt_time(5e-9).ends_with("ns"));
        assert!(fmt_time(5e-6).ends_with("us"));
        assert!(fmt_time(5e-3).ends_with("ms"));
        assert!(fmt_time(5.0).ends_with('s'));
    }
}
