//! Quickstart: define an IP graph, generate it, route in it, measure it.
//!
//! Run with `cargo run --release -p ipgraph --example quickstart`.

use ipgraph::prelude::*;

fn main() -> Result<()> {
    // 1. The paper's running example: HSN(2, Q2) = HCN(2,2) without
    //    diameter links — the 16-node network of Figure 1a.
    let spec = SuperIpSpec::hsn(2, NucleusSpec::hypercube(2));
    println!("network: {}", spec.name);

    // The IP-graph view: a seed label and generators ("ball-arrangement
    // game" moves). Nucleus generators permute the leftmost 4 symbols,
    // the super-generator T2 swaps the two 4-symbol halves.
    let ip_spec = spec.to_ip_spec();
    println!("seed:    {}", ip_spec.seed.display_grouped(spec.m()));
    for g in &ip_spec.generators {
        println!("gen:     {:<4} = {}", g.name, g.perm);
    }

    // 2. Generate by breadth-first closure of the seed under the
    //    generators.
    let ip = ip_spec.generate()?;
    println!(
        "\ngenerated {} nodes (Theorem 3.2 predicts {})",
        ip.node_count(),
        spec.expected_size()?
    );

    // 3. Route between two nodes: routing = sorting the source label into
    //    the destination label (paper §4).
    let router = routing::SuperRouter::new(&spec)?;
    let src = ip.label(0).clone();
    let dst = ip.label(15).clone();
    let path = router.route(&src, &dst)?;
    println!(
        "\nroute {} -> {}:",
        src.display_grouped(4),
        dst.display_grouped(4)
    );
    for step in &path {
        println!("  {}", step.display_grouped(4));
    }
    println!(
        "  {} hops (diameter = {} by Theorem 4.1)",
        path.len() - 1,
        routing::predicted_diameter(&spec)?
    );

    // 4. Topological metrics.
    let g = ip.to_undirected_csr();
    println!("\ndegree:       {}..{}", g.min_degree(), g.max_degree());
    println!("diameter:     {}", algo::diameter(&g));
    println!("avg distance: {:.3}", algo::average_distance(&g));

    // 5. Hierarchical metrics with one nucleus (Q2) per chip.
    let tn = TupleNetwork::from_spec(&spec)?;
    let tg = tn.build();
    let part = partition::nucleus_partition(&tn);
    let m = imetrics::exact_metrics(&tg, &part);
    println!("\nwith one Q2 module per chip:");
    println!(
        "  I-degree:       {:.2}  (off-chip links per node)",
        m.i_degree
    );
    println!(
        "  I-diameter:     {}     (worst-case off-chip hops)",
        m.i_diameter
    );
    println!("  avg I-distance: {:.2}", m.avg_i_distance);
    Ok(())
}
