//! Run a real parallel algorithm — bitonic sort — on several networks and
//! compare the emulation cost: the paper's §1 claim that super-IP graphs
//! emulate hypercube algorithms with (asymptotically) optimal slowdown.
//!
//! Run with `cargo run --release -p ipgraph --example sort_on_network`.

use ipgraph::prelude::*;

fn keys(n: usize) -> Vec<u64> {
    (0..n as u64)
        .map(|i| i.wrapping_mul(0x9e3779b97f4a7c15) >> 13)
        .collect()
}

fn main() {
    let n = 256usize; // logical hypercube Q8
    let hosts: Vec<(String, Csr)> = vec![
        ("hypercube Q8 (native)".into(), classic::hypercube(8)),
        (
            "HSN(2,Q4)".into(),
            hier::hsn(2, classic::hypercube(4), "Q4").build(),
        ),
        (
            "HSN(4,Q2)".into(),
            hier::hsn(4, classic::hypercube(2), "Q2").build(),
        ),
        (
            "ring-CN(2,Q4)".into(),
            hier::ring_cn(2, classic::hypercube(4), "Q4").build(),
        ),
        ("ring C256".into(), classic::ring(256)),
    ];

    println!(
        "{:<24} {:>6} {:>12} {:>12} {:>10}",
        "host", "steps", "time (lower)", "time (upper)", "slowdown"
    );
    let mut baseline = None;
    for (name, host) in &hosts {
        let map: Vec<u32> = (0..n as u32).collect();
        let emu = HostEmulator::new(host, &map);
        let mut data = keys(n);
        let report = emu.bitonic_sort(&mut data);
        assert!(data.windows(2).all(|w| w[0] <= w[1]), "{name}: sort failed");
        let base = *baseline.get_or_insert(report.host_time_lower);
        println!(
            "{:<24} {:>6} {:>12} {:>12} {:>9.1}x",
            name,
            report.steps,
            report.host_time_lower,
            report.host_time_upper,
            report.host_time_lower as f64 / base as f64
        );
    }

    println!();
    println!("every host sorted the same 256 keys with the same 36-step bitonic");
    println!("schedule; only the per-step dilation/congestion differs. The");
    println!("super-IP hosts stay within a small constant of the native");
    println!("hypercube; the ring pays its linear diameter.");

    // parallel prefix too, on the best non-native host
    let host = hier::hsn(2, classic::hypercube(4), "Q4").build();
    let map: Vec<u32> = (0..n as u32).collect();
    let emu = HostEmulator::new(&host, &map);
    let values: Vec<u64> = (1..=n as u64).collect();
    let (prefix, report) = emu.parallel_prefix(&values);
    assert_eq!(prefix[n - 1], (n as u64) * (n as u64 + 1) / 2);
    println!();
    println!(
        "parallel prefix of 1..=256 on HSN(2,Q4): {} steps, host time {}..{} (last prefix = {})",
        report.steps,
        report.host_time_lower,
        report.host_time_upper,
        prefix[n - 1]
    );
}
