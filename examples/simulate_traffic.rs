//! Traffic simulation: inject uniform random traffic into two 1024-node
//! networks and watch latency climb toward saturation — with uniform links
//! and with pin-constrained off-chip links.
//!
//! The pin-constrained column applies §5.3's *unit node off-module
//! capacity*: every node gets the same aggregate off-chip bandwidth, so a
//! network with many off-chip links per node (the hypercube: 6 with Q4
//! chips) must run each of them proportionally slower than a network with
//! one off-chip link per node (ring-CN(2, Q4-packed)).
//!
//! Run with `cargo run --release -p ipgraph --example simulate_traffic`.

use ipgraph::prelude::*;

/// (name, graph, module map, off-chip links per node)
fn net_hypercube() -> (String, Csr, Vec<u32>, u32) {
    let g = classic::hypercube(10);
    let part = partition::subcube_partition(10, 4);
    ("hypercube Q10".into(), g, part.class, 6)
}

fn net_ring_cn() -> (String, Csr, Vec<u32>, u32) {
    let tn = hier::ring_cn(2, classic::hypercube(5), "Q5");
    let g = tn.build();
    let (class, _) = tn.nucleus_partition();
    // nucleus Q5 = 32 nodes; split in two Q4 halves to match the 16-node
    // chip. Off-chip links per node: 1 swap link + 1 cube link into the
    // other half = 2.
    let class = class
        .iter()
        .enumerate()
        .map(|(v, &c)| c * 2 + ((v as u32 >> 4) & 1))
        .collect();
    (tn.name.clone(), g, class, 2)
}

fn main() {
    let rates = [0.01, 0.05, 0.1, 0.2, 0.3];
    println!(
        "{:<18} {:>6} avg latency (uniform | unit off-chip capacity)",
        "network", "λ"
    );
    for (name, g, module, off_links) in [net_hypercube(), net_ring_cn()] {
        for &rate in &rates {
            let cfg = SimConfig {
                injection_rate: rate,
                warmup_cycles: 500,
                measure_cycles: 1_500,
                drain_cycles: 3_000,
                on_module_interval: 1,
                off_module_interval: 1,
                seed: 11,
                ..SimConfig::default()
            };
            let fast = run_clustered(&g, &module, &cfg);
            // unit off-chip capacity: interval ∝ off-chip links per node
            let slow_cfg = SimConfig {
                off_module_interval: 4 * off_links,
                ..cfg
            };
            let slow = run_clustered(&g, &module, &slow_cfg);
            println!(
                "{:<18} {:>6.2} {:>10.2} | {:>10.2}   (delivered {:>3.0}% | {:>3.0}%)",
                name,
                rate,
                fast.avg_latency,
                slow.avg_latency,
                100.0 * fast.delivered as f64 / fast.injected.max(1) as f64,
                100.0 * slow.delivered as f64 / slow.injected.max(1) as f64,
            );
        }
        println!();
    }
    println!("with equal per-node off-chip bandwidth, the network that needs fewer");
    println!("off-chip transmissions per message (smaller avg I-distance × fewer,");
    println!("fatter links) keeps its latency flat far longer — the §5 argument.");
}
