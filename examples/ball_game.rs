//! The ball-arrangement game (paper §2): watch the IP-graph model work on
//! the paper's own worked examples.
//!
//! Run with `cargo run --release -p ipgraph --example ball_game`.

use ipgraph::prelude::*;

fn show_example(title: &str, spec: &IpGraphSpec, group_width: usize) -> Result<()> {
    println!("== {title} ==");
    println!("seed: {}", spec.seed.display_grouped(group_width));
    let ip = spec.generate()?;
    println!("generators:");
    for (i, g) in spec.generators.iter().enumerate() {
        let img = ip.label(ip.arc(0, i));
        println!(
            "  {:<8} {} -> {}",
            g.name,
            spec.seed.display_grouped(group_width),
            img.display_grouped(group_width)
        );
    }
    println!("states (nodes) reachable: {}", ip.node_count());
    let g = ip.to_undirected_csr();
    println!(
        "degree {}..{}, diameter {} (= worst-case number of moves to solve the game)",
        g.min_degree(),
        g.max_degree(),
        algo::diameter(&g)
    );
    println!();
    Ok(())
}

fn main() -> Result<()> {
    // The 6-star of §2: distinct balls 1..6, five permissible moves
    // (1,i). 720 states — every arrangement of the six balls.
    show_example(
        "6-star (Cayley graph: all balls distinct)",
        &IpGraphSpec::star(6),
        6,
    )?;

    // The §2 IP example: two identical sets of balls 1,2,3; moves (1,2),
    // (1,3) and "rotate the two halves". 36 states, not 720: identical
    // balls collapse arrangements — the IP relaxation at work.
    show_example(
        "§2 example (repeated balls: two copies of 1,2,3)",
        &IpGraphSpec::section2_example(),
        3,
    )?;

    // The de Bruijn graph as a ball game (paper §2): n pairs of balls
    // "12"; moves = rotate-by-a-pair, with or without swapping the last
    // pair. 2^n states, out-degree 2 — the densest digraph there is.
    let db = ipdefs::debruijn_ip(4);
    show_example("binary de Bruijn DB(2,4) (directed)", &db, 2)?;

    // And the paper's HCN(2,2) seed: both halves of the seed use the SAME
    // symbol sequence — which is exactly why 16 nodes result instead of
    // the 8!/(2!2!2!2!) arrangements of a Cayley graph.
    let hcn = SuperIpSpec::hsn(2, NucleusSpec::hypercube(2)).to_ip_spec();
    show_example("HCN(2,2) without diameter links = HSN(2, Q2)", &hcn, 4)?;

    // Routing = solving the game. Pick a scrambled state of the 6-star
    // and sort it back to 123456.
    println!("== solving the 6-star game ==");
    let star = IpGraphSpec::star(6);
    let ip = star.generate()?;
    let g = ip.to_directed_csr();
    let scrambled = ip
        .node_of(&Label::parse("654321").unwrap())
        .expect("654321 is a star node");
    let path = algo::shortest_path(&g, scrambled, 0).expect("connected");
    println!("sorting 654321 -> 123456 in {} moves:", path.len() - 1);
    for w in path.windows(2) {
        let gen = ip.generator_between(w[0], w[1]).unwrap();
        println!(
            "  {} --{}-> {}",
            ip.label(w[0]),
            star.generators[gen].name,
            ip.label(w[1])
        );
    }
    Ok(())
}
