//! Chip planner: given a target machine size and a per-chip processor
//! budget (the paper's packaging constraint), rank candidate topologies by
//! the cost model that matches your technology.
//!
//! Usage: `cargo run --release -p ipgraph --example chip_planner -- [nodes] [chip_cap]`
//! (defaults: 4096 nodes, 16 processors per chip).

use ipgraph::prelude::*;

struct Candidate {
    summary: CostSummary,
}

fn main() {
    let mut args = std::env::args().skip(1);
    let target: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4096);
    let cap: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(16);
    println!("planning a ~{target}-processor machine, ≤ {cap} processors per chip\n");

    let mut candidates: Vec<Candidate> = Vec::new();
    let mut add = |name: String, g: Csr, part: Partition| {
        if part.max_module_size() > cap {
            return;
        }
        // accept sizes within 4x of the target
        if g.node_count() * 4 < target || g.node_count() > target * 4 {
            return;
        }
        candidates.push(Candidate {
            summary: summarize(name, &g, &part),
        });
    };

    // hypercube with the largest subcube that fits
    let low = cap.ilog2() as usize;
    let n = target.ilog2() as usize;
    add(
        format!("hypercube Q{n}"),
        classic::hypercube(n),
        partition::subcube_partition(n, low),
    );

    // 2-D torus with 4x4 blocks
    let k = (target as f64).sqrt().round() as usize;
    let k = k - k % 4;
    if k >= 8 && cap >= 16 {
        add(
            format!("2D torus {k}x{k}"),
            classic::torus2d(k),
            partition::torus_block_partition(k, 4, 4),
        );
    }

    // super-IP families over nuclei that fit the chip
    let nuclei: Vec<(&str, Csr)> = vec![
        ("Q2", classic::hypercube(2)),
        ("Q3", classic::hypercube(3)),
        ("Q4", classic::hypercube(4)),
        ("FQ4", classic::folded_hypercube(4)),
        ("P", classic::petersen()),
    ];
    for (name, nucleus) in nuclei {
        if nucleus.node_count() > cap {
            continue;
        }
        for l in 2..=5usize {
            let size = nucleus.node_count().pow(l as u32);
            if size * 4 < target || size > target * 4 {
                continue;
            }
            for tn in [
                hier::hsn(l, nucleus.clone(), name),
                hier::ring_cn(l, nucleus.clone(), name),
                hier::complete_cn(l, nucleus.clone(), name),
            ] {
                let g = tn.build();
                let part = partition::nucleus_partition(&tn);
                add(tn.name.clone(), g, part);
            }
        }
    }

    // rank by II-cost (slow off-chip links), the §5.4 regime
    candidates.sort_by(|a, b| {
        a.summary
            .ii_cost()
            .partial_cmp(&b.summary.ii_cost())
            .unwrap()
    });

    println!(
        "{:<24} {:>7} {:>5} {:>5} {:>8} {:>6} {:>7} {:>8} {:>8}",
        "candidate", "N", "deg", "diam", "DD-cost", "I-deg", "I-diam", "ID-cost", "II-cost"
    );
    for c in &candidates {
        let s = &c.summary;
        println!(
            "{:<24} {:>7} {:>5} {:>5} {:>8.0} {:>6.2} {:>7} {:>8.1} {:>8.1}",
            s.name,
            s.nodes,
            s.degree,
            s.diameter,
            s.dd_cost(),
            s.i_degree,
            s.i_diameter,
            s.id_cost(),
            s.ii_cost()
        );
    }
    if let Some(best) = candidates.first() {
        println!(
            "\nbest for slow off-chip links (II-cost): {}",
            best.summary.name
        );
    }
    let pin_best = candidates.iter().min_by(|a, b| {
        a.summary
            .id_cost()
            .partial_cmp(&b.summary.id_cost())
            .unwrap()
    });
    if let Some(best) = pin_best {
        println!(
            "best under pin constraints (ID-cost):   {}",
            best.summary.name
        );
    }
}
