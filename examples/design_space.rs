//! Design-space exploration: sweep nuclei and hierarchy depths, compare
//! the resulting super-IP graphs on the paper's figures of merit.
//!
//! This is the §6 workflow: "IP graphs provide flexibility in the design
//! of parallel architectures in view of the possibility of selecting
//! several parameters, nuclei, super-generators, seed labels..."
//!
//! Run with `cargo run --release -p ipgraph --example design_space`.

use ipgraph::prelude::*;

struct Row {
    summary: CostSummary,
}

fn measure(tn: &ipgraph::core::superip::TupleNetwork) -> Row {
    let g = tn.build();
    let part = partition::nucleus_partition(tn);
    Row {
        summary: summarize(tn.name.clone(), &g, &part),
    }
}

fn main() {
    type NucleusCtor = fn() -> Csr;
    let nuclei: Vec<(&str, NucleusCtor)> = vec![
        ("Q2", || classic::hypercube(2)),
        ("Q3", || classic::hypercube(3)),
        ("FQ3", || classic::folded_hypercube(3)),
        ("K4", || classic::complete(4)),
        ("P", classic::petersen),
        ("S3", || classic::star(3)),
    ];

    let mut rows: Vec<Row> = Vec::new();
    for (name, nucleus) in &nuclei {
        for l in 2..=3usize {
            rows.push(measure(&hier::hsn(l, nucleus(), name)));
            rows.push(measure(&hier::ring_cn(l, nucleus(), name)));
            rows.push(measure(&hier::superflip(l, nucleus(), name)));
        }
    }

    rows.sort_by(|a, b| {
        a.summary.nodes.cmp(&b.summary.nodes).then(
            a.summary
                .ii_cost()
                .partial_cmp(&b.summary.ii_cost())
                .unwrap(),
        )
    });

    println!(
        "{:<22} {:>6} {:>4} {:>5} {:>8} {:>6} {:>7} {:>8} {:>8}",
        "network", "N", "deg", "diam", "DD-cost", "I-deg", "I-diam", "ID-cost", "II-cost"
    );
    for r in &rows {
        let s = &r.summary;
        println!(
            "{:<22} {:>6} {:>4} {:>5} {:>8.0} {:>6.2} {:>7} {:>8.1} {:>8.1}",
            s.name,
            s.nodes,
            s.degree,
            s.diameter,
            s.dd_cost(),
            s.i_degree,
            s.i_diameter,
            s.id_cost(),
            s.ii_cost()
        );
    }

    // §6 design guidance, checked live: "a dense nucleus graph reduces
    // the diameter and average distance".
    let find = |n: &str| rows.iter().find(|r| r.summary.name == n).unwrap();
    let q3 = find("HSN(2,Q3)");
    let fq3 = find("HSN(2,FQ3)"); // denser nucleus, same size
    assert!(fq3.summary.diameter < q3.summary.diameter);
    println!(
        "\ndenser nucleus wins: HSN(2,FQ3) diameter {} < HSN(2,Q3) diameter {}",
        fq3.summary.diameter, q3.summary.diameter
    );
}
